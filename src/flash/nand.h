// Page-granularity NAND flash device simulator.
//
// Models what the FTL layers need from real NAND:
//   * read/program at page granularity, erase at block granularity;
//   * erase-before-write — a programmed page can never be overwritten, only
//     invalidated and reclaimed by erasing its block;
//   * sequential in-block programming order;
//   * asymmetric latencies (geometry.page_read_us / page_write_us /
//     block_erase_us) accumulated into device busy time;
//   * out-of-band (OOB) metadata per page: the owning LPN (data pages) or
//     VTPN (translation pages), a page kind, and a device-wide monotonic
//     program sequence number. GC uses the tag to find the forward mapping
//     of a migrated page; power-loss recovery scans all three to rebuild the
//     mapping table, resolving conflicting copies by sequence number
//     (seq 0 marks a torn/failed page whose OOB is unreadable);
//   * a small reserved metadata region (flash/meta.h): an append-only log of
//     sequenced, checksummed records that survives power cuts. With the
//     journal enabled the device WAL-appends a kBlockDirty record before the
//     first program into a block each checkpoint epoch, and FTLs append
//     kCheckpoint records; checkpointed recovery replays only this tail
//     instead of scanning the device. Appends are torn realistically by a
//     power cut (the record survives with a failing checksum);
//   * per-block summary metadata real devices keep in block headers: the
//     newest successful program sequence per block (block_newest_seq), read
//     without a per-page scan by checkpointed recovery;
//   * the persisted-mapping mirror: the simulator carries no data payload,
//     but translation pages' *contents* (LPN → PPN entries) are semantically
//     load-bearing for recovery, so the device retains them durably —
//     TranslationStore reads and writes them through the accessors below,
//     and after a reboot they model on-demand translation-page reads;
//   * injected faults and power loss via an installed FaultPlan (fault.h) —
//     failed programs consume the page, failed erases mark the block bad,
//     and a power cut snapshots the device so RestoreToCutInstant can roll
//     flash back to the cut instant for crash-recovery testing.
//
// Page states and per-block counters live in a single packed PageStateArena
// (see block.h); the per-page operations below are inline array math so the
// replay hot path has no call or pointer-chasing overhead — fault handling
// is hidden behind one [[unlikely]] null check. Per-page OOB arrays and the
// mirror are SegmentedArrays: dense flat storage by default (geometry
// sparse_segment_pages == 0), materialize-on-write segments for TB-scale
// virtual devices. Interior state checks are TPFTL_DCHECK — compiled out of
// release replays, re-enabled by -DTPFTL_HARDENED=ON (debug and CI builds).

#ifndef SRC_FLASH_NAND_H_
#define SRC_FLASH_NAND_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "src/flash/block.h"
#include "src/flash/geometry.h"
#include "src/flash/meta.h"
#include "src/flash/stats.h"
#include "src/flash/types.h"
#include "src/obs/phase.h"
#include "src/util/assert.h"
#include "src/util/segmented_array.h"

namespace tpftl {

class FaultInjector;
struct FaultPlan;

// What a programmed page holds, recorded in its OOB area alongside the tag.
// kNone marks a consumed-but-unreadable page (failed or torn program).
enum class OobKind : uint8_t { kNone = 0, kData = 1, kTranslation = 2 };

class NandFlash {
 public:
  explicit NandFlash(const FlashGeometry& geometry);
  ~NandFlash();

  NandFlash(const NandFlash&) = delete;
  NandFlash& operator=(const NandFlash&) = delete;

  // Reads one page; the page must hold data (valid or invalid — FTLs read
  // just-superseded translation pages during read-modify-write). Returns the
  // operation latency.
  MicroSec ReadPage(Ppn ppn) {
    TPFTL_DCHECK(ppn < geometry_.total_pages());
    TPFTL_DCHECK_MSG(arena_.StateAt(geometry_.BlockOf(ppn), geometry_.OffsetOf(ppn)) !=
                         PageState::kFree,
                     "read of an unprogrammed page");
    ++stats_.page_reads;
    stats_.busy_time_us += geometry_.page_read_us;
    obs::ChargeFlash(obs::FlashOp::kRead, geometry_.page_read_us);
    if (multi_die_) [[unlikely]] {
      AdvanceDie(geometry_.DieOf(ppn), geometry_.page_read_us);
    }
    return geometry_.page_read_us;
  }

  // Programs the next sequential page of `block`, tagging its OOB with
  // `oob_tag` (LPN for data pages, VTPN for translation pages), `kind`, and
  // a fresh sequence number. Returns the programmed PPN via out-param and
  // the latency. The block must have a free page. Under an installed fault
  // plan the program may fail: the page is consumed as unreadable and
  // *out_ppn is set to kInvalidPpn — the caller retries on the next page.
  MicroSec ProgramPage(BlockId block, uint64_t oob_tag, Ppn* out_ppn,
                       OobKind kind = OobKind::kData) {
    if (journal_enabled_) [[unlikely]] {
      MaybeJournalDirty(block, kind);
    }
    if (fault_ != nullptr) [[unlikely]] {
      return ProgramPageFaulty(block, oob_tag, out_ppn, kind);
    }
    TPFTL_DCHECK(block < arena_.total_blocks());
    ++op_index_;
    const uint64_t offset = arena_.block(block).Program();
    const Ppn ppn = geometry_.PpnOf(block, offset);
    oob_.Set(ppn, oob_tag);
    oob_seq_.Set(ppn, ++program_seq_);
    oob_kind_.Set(ppn, static_cast<uint8_t>(kind));
    block_newest_seq_[block] = program_seq_;
    if (block_pool_kind_[block] == static_cast<uint8_t>(OobKind::kNone)) {
      block_pool_kind_[block] = static_cast<uint8_t>(kind);
    }
    if (out_ppn != nullptr) {
      *out_ppn = ppn;
    }
    ++stats_.page_writes;
    stats_.busy_time_us += geometry_.page_write_us;
    obs::ChargeFlash(obs::FlashOp::kProgram, geometry_.page_write_us);
    if (multi_die_) [[unlikely]] {
      AdvanceDie(geometry_.DieOfBlock(block), geometry_.page_write_us);
    }
    return geometry_.page_write_us;
  }

  // Programs a specific free page (out-of-order; see Block::ProgramAt).
  // Exempt from injected program failures (fault.h); a power cut can still
  // land on it.
  MicroSec ProgramPageAt(Ppn ppn, uint64_t oob_tag);

  // valid → invalid; the FTL calls this when superseding a page.
  void InvalidatePage(Ppn ppn) {
    TPFTL_DCHECK(ppn < geometry_.total_pages());
    arena_.block(geometry_.BlockOf(ppn)).Invalidate(geometry_.OffsetOf(ppn));
  }

  // Erases one block; all its pages must already be invalid or free.
  // Returns the latency. Under an installed fault plan the erase may fail:
  // the block keeps its contents and is marked bad (IsBad) — callers must
  // retire it.
  MicroSec EraseBlock(BlockId block);

  // True once the block has consumed its erase budget (geometry
  // max_erase_cycles; never true when the budget is 0 = unlimited). Worn
  // blocks still hold data but must not be programmed again.
  bool IsWornOut(BlockId block) const;

  // True for factory-marked bad blocks (FaultPlan::bad_blocks) and blocks
  // whose erase failed. Bad blocks must never be programmed or erased again.
  bool IsBad(BlockId block) const {
    TPFTL_DCHECK(block < bad_.size());
    return bad_[block] != 0;
  }

  // OOB tag of a programmed page.
  uint64_t OobTag(Ppn ppn) const { return oob_.Get(ppn); }

  // OOB program sequence number (device-wide monotonic, starting at 1).
  // 0 = unreadable: the page was never programmed, or its program failed or
  // was torn by a power cut.
  uint64_t OobSeq(Ppn ppn) const { return oob_seq_.Get(ppn); }

  OobKind OobKindOf(Ppn ppn) const { return static_cast<OobKind>(oob_kind_.Get(ppn)); }

  PageState StateOf(Ppn ppn) const {
    TPFTL_DCHECK(ppn < geometry_.total_pages());
    return arena_.StateAt(geometry_.BlockOf(ppn), geometry_.OffsetOf(ppn));
  }

  // Cheap by-value view (arena pointer + id); see block.h. Mutations flow
  // through the NandFlash page operations — callers use views read-only.
  Block block(BlockId id) const {
    TPFTL_DCHECK(id < arena_.total_blocks());
    return const_cast<PageStateArena&>(arena_).block(id);
  }
  const FlashGeometry& geometry() const { return geometry_; }

  const FlashStats& stats() const { return stats_; }
  void ResetStats() {
    stats_.Reset();
    std::fill(die_busy_us_.begin(), die_busy_us_.end(), 0.0);
  }

  // --- per-die timelines (geometry channels × dies) ---------------------
  //
  // Each die is an independent command queue with a busy-until timeline.
  // The SSD layer calls BeginRequestAt(t) with the request's issue instant;
  // every subsequent flash operation starts at max(t, its die's busy-until),
  // occupies the die for its latency, and the request completes when its
  // last operation does (request_finish_us). Operations on *different* dies
  // therefore overlap; operations on the same die serialize. With one die
  // (the default) the timelines are inert — the single-die replay path pays
  // one predicted-not-taken branch per operation and its timing arithmetic
  // is bit-identical to the pre-parallel device.

  uint32_t total_dies() const { return static_cast<uint32_t>(die_free_at_.size()); }
  bool multi_die() const { return multi_die_; }

  // Starts a new timed request window at absolute device time `start_us`.
  void BeginRequestAt(MicroSec start_us) {
    request_now_us_ = start_us;
    request_finish_us_ = start_us;
  }
  // Completion instant of the latest operation issued since BeginRequestAt.
  MicroSec request_finish_us() const { return request_finish_us_; }

  // Busy-until instant of one die, and the latest across all dies.
  MicroSec die_free_at(uint32_t die) const {
    TPFTL_DCHECK(die < die_free_at_.size());
    return die_free_at_[die];
  }
  MicroSec max_die_free_at() const {
    return *std::max_element(die_free_at_.begin(), die_free_at_.end());
  }
  // Cumulative busy time of one die since the last ResetStats (utilization
  // numerator; the denominator is the caller's measurement window).
  MicroSec die_busy_us(uint32_t die) const {
    TPFTL_DCHECK(die < die_busy_us_.size());
    return die_busy_us_[die];
  }

  // Total erases across all blocks since construction (not reset by
  // ResetStats — lifetime analysis uses both views).
  uint64_t TotalEraseCount() const;
  uint64_t MaxEraseCount() const;

  // --- metadata log, block summaries, persisted-mapping mirror ------------

  // Turns the device-side dirty-block journal on: the first program into a
  // block within each checkpoint epoch WAL-appends a kBlockDirty record
  // before the program applies. FTLs enable this together with periodic
  // checkpoints (FtlEnv::checkpoint); off by default — the journal branch is
  // the only added hot-path cost, one predicted-not-taken test per program.
  void EnableMetaJournal(bool on) { journal_enabled_ = on; }
  bool meta_journal_enabled() const { return journal_enabled_; }

  // Appends one record to the metadata log. A kCheckpoint record atomically
  // advances the journal epoch (every block re-journals on its next
  // program). This is a state-mutating device operation: a power cut can
  // land on it, leaving the record torn (checksum does not verify) after
  // RestoreToCutInstant. Billed byte-proportionally against the page-write
  // rate (records are coalesced into the device's metadata page buffer).
  // Returns the simulated latency.
  MicroSec AppendMetaRecord(MetaRecordType type, std::vector<uint64_t> payload);

  // Drops every record with seq < `before_seq` (checkpoint-prefix trim,
  // issued after a new checkpoint lands). Atomic superblock-pointer update:
  // a power cut on it discards it wholesale. Returns the latency.
  MicroSec TrimMetaLogBefore(uint64_t before_seq);

  const std::vector<MetaRecord>& meta_log() const { return meta_log_; }
  uint64_t meta_epoch() const { return meta_epoch_; }

  // Newest successful program sequence in the block, 0 after an erase (or
  // never programmed / all programs torn). Kept in the block's header
  // metadata by real devices; checkpointed recovery reads it instead of
  // scanning every page's OOB for the per-block max.
  uint64_t block_newest_seq(BlockId block) const {
    TPFTL_DCHECK(block < block_newest_seq_.size());
    return block_newest_seq_[block];
  }

  // Kind of the block's readable pages (kNone when erased, never programmed,
  // or every program was torn) — the block-header twin of the OOB scan's
  // per-block pool resolution. Blocks never mix kinds (erase-before-reuse).
  OobKind block_pool_kind(BlockId block) const {
    TPFTL_DCHECK(block < block_pool_kind_.size());
    return static_cast<OobKind>(block_pool_kind_[block]);
  }

  // The cumulative checkpoint-area translation directory: VTPN → (PTPN, its
  // program seq at checkpoint time), folded in from each kCheckpoint
  // record's GTD deltas. kInvalidPpn / 0 for never-checkpointed entries.
  Ppn checkpoint_gtd_ppn(Vtpn vtpn) const { return ckpt_gtd_ppn_.Get(vtpn); }
  uint64_t checkpoint_gtd_seq(Vtpn vtpn) const { return ckpt_gtd_seq_.Get(vtpn); }

  // The cumulative checkpoint-area *data* directory: LPN → (PPN, seq), folded
  // from kCheckpoint records carrying kCheckpointFlagCumulativeData (RAM-table
  // FTLs — see src/flash/meta.h). Empty for FTLs that checkpoint through the
  // GTD. checkpoint_data_entries() counts the live (non-cleared) entries so
  // recovery can bill the directory read byte-proportionally.
  Ppn checkpoint_data_ppn(Lpn lpn) const { return ckpt_data_ppn_.Get(lpn); }
  uint64_t checkpoint_data_seq(Lpn lpn) const { return ckpt_data_seq_.Get(lpn); }
  const SegmentedArray<Ppn>& checkpoint_data_mirror() const { return ckpt_data_ppn_; }
  uint64_t checkpoint_data_entries() const { return ckpt_data_entries_; }

  // Records appended since the last durable kCheckpoint append — the FTL's
  // journal-length cap consults this to force an early checkpoint.
  uint64_t meta_records_since_checkpoint() const { return meta_records_since_checkpoint_; }

  // The persisted-mapping mirror: the durable LPN → PPN entry each
  // translation page currently stores for `lpn` (kInvalidPpn = entry absent
  // or persisted as unmapped). Written by TranslationStore as part of the
  // translation-page programs that persist entries; rolled back with the
  // rest of the device by a power cut. Reading it after a reboot models the
  // on-demand translation-page read of a real demand-paged FTL.
  Ppn PersistedMapping(Lpn lpn) const { return persisted_.Get(lpn); }
  void SetPersistedMapping(Lpn lpn, Ppn ppn) { persisted_.Set(lpn, ppn); }
  // Contiguous entries [first, first + count); count must stay within one
  // translation page (segment sizes are multiples of the page entry count).
  const Ppn* PersistedMappingSpan(Lpn first, uint64_t count) const {
    return persisted_.Span(first, count);
  }
  const SegmentedArray<Ppn>& persisted_mirror() const { return persisted_; }

  // Resident materialize-on-write segments across the sparse per-page
  // arrays, the mirror, and the checkpoint directories (8 × 1 in dense mode).
  uint64_t ResidentSegments() const {
    return oob_.materialized_segments() + oob_seq_.materialized_segments() +
           oob_kind_.materialized_segments() + persisted_.materialized_segments() +
           ckpt_gtd_ppn_.materialized_segments() + ckpt_gtd_seq_.materialized_segments() +
           ckpt_data_ppn_.materialized_segments() + ckpt_data_seq_.materialized_segments();
  }

  // Test hooks for the corruption-handling paths: flip a stored checksum
  // (bit-rot; validation must stop there) or drop a record outright (a
  // sequence gap; validation must fall back to the full scan).
  void TestOnlyCorruptMetaRecord(size_t index);
  void TestOnlyDropMetaRecord(size_t index);

  // --- fault injection & power loss (see fault.h) -------------------------

  // Installs a fault plan (replacing any previous one) and marks its listed
  // bad blocks. Plans with bad blocks must be installed before the FTL is
  // constructed so allocators skip them from the start.
  void InstallFaultPlan(const FaultPlan& plan);
  // Removes the plan; already-marked bad blocks stay bad.
  void ClearFaultPlan();

  // State-mutating operations (programs + erases + metadata appends/trims)
  // performed since construction; the index of the next operation is
  // op_index() + 1. Fault plans address operations by this index.
  uint64_t op_index() const { return op_index_; }

  // True once the plan's power cut fired. The device keeps operating
  // normally (simulation convenience — there are no exceptions to unwind
  // the FTL call stack), but every operation from the cut onward is
  // discarded by RestoreToCutInstant.
  bool power_cut_triggered() const { return power_cut_; }

  // Rolls the device back to the instant of the power cut: all operations
  // from the cut onward are undone, and the cut operation itself leaves a
  // torn page (programs), a torn metadata record (appends) or an intact
  // un-erased block (erases). Clears the fault plan — power is back, and
  // recovery runs fault-free. The caller must discard the FTL that was
  // driving the device and recover a fresh one from the surviving flash
  // state.
  void RestoreToCutInstant();

 private:
  struct PowerSnapshot;

  // Books one operation of `latency` onto `die`'s timeline (multi-die only).
  void AdvanceDie(uint32_t die, MicroSec latency) {
    const MicroSec begin = std::max(request_now_us_, die_free_at_[die]);
    const MicroSec end = begin + latency;
    die_free_at_[die] = end;
    die_busy_us_[die] += latency;
    if (end > request_finish_us_) {
      request_finish_us_ = end;
    }
  }

  MicroSec ProgramPageFaulty(BlockId block, uint64_t oob_tag, Ppn* out_ppn, OobKind kind);
  // WAL half of the journal: first program into `block` this epoch appends
  // its kBlockDirty record before the program applies.
  void MaybeJournalDirty(BlockId block, OobKind kind);
  // Snapshots the device just before operation `op` when it is the cut
  // point. Returns true when this operation is the (newly or already) cut
  // one, i.e. it must be recorded as torn if it programs a page.
  bool MaybeArmPowerCut(uint64_t op);
  void TearPage(Ppn ppn);

  FlashGeometry geometry_;
  PageStateArena arena_;
  SegmentedArray<uint64_t> oob_;
  SegmentedArray<uint64_t> oob_seq_;
  SegmentedArray<uint8_t> oob_kind_;
  std::vector<uint8_t> bad_;  // Per-block bad flag (factory or failed erase).
  FlashStats stats_;
  bool multi_die_ = false;                // geometry.total_dies() > 1.
  std::vector<MicroSec> die_free_at_;     // Busy-until per die.
  std::vector<MicroSec> die_busy_us_;     // Cumulative busy since ResetStats.
  MicroSec request_now_us_ = 0.0;         // Issue instant (BeginRequestAt).
  MicroSec request_finish_us_ = 0.0;      // Latest completion this request.
  uint64_t program_seq_ = 0;
  uint64_t op_index_ = 0;
  bool power_cut_ = false;
  Ppn torn_ppn_ = kInvalidPpn;  // Page the cut operation was programming.
  bool torn_meta_ = false;      // The cut operation was a metadata append.
  MetaRecord torn_meta_record_;  // Its content, re-appended torn on restore.
  std::unique_ptr<FaultInjector> fault_;
  std::unique_ptr<PowerSnapshot> snapshot_;

  // Metadata region + block summaries (see the class comment).
  bool journal_enabled_ = false;
  std::vector<MetaRecord> meta_log_;
  uint64_t meta_seq_ = 0;    // Last record seq handed out (contiguous).
  uint64_t meta_epoch_ = 0;  // Advances with every kCheckpoint append.
  std::vector<uint64_t> block_epoch_;       // Epoch of each block's last journal record.
  std::vector<uint64_t> block_newest_seq_;  // Per-block newest program seq.
  std::vector<uint8_t> block_pool_kind_;    // Per-block kind of readable pages.
  uint64_t meta_records_since_checkpoint_ = 0;
  SegmentedArray<Ppn> persisted_;           // LPN → durable persisted entry.
  SegmentedArray<Ppn> ckpt_gtd_ppn_;        // Checkpoint-area directory.
  SegmentedArray<uint64_t> ckpt_gtd_seq_;
  SegmentedArray<Ppn> ckpt_data_ppn_;       // Cumulative data directory
  SegmentedArray<uint64_t> ckpt_data_seq_;  // (RAM-table FTLs only).
  uint64_t ckpt_data_entries_ = 0;          // Live entries in it.
};

}  // namespace tpftl

#endif  // SRC_FLASH_NAND_H_
