// Deterministic NAND fault injection (programs, erases, power loss).
//
// A FaultPlan describes everything that will go wrong with a device, up
// front and reproducibly: factory-marked bad blocks, program/erase failures
// at fixed operation indices or with a seeded probability, and at most one
// power cut at a fixed operation index. NandFlash consults the plan on its
// slow path only — a device without an installed plan pays a single
// predictable branch per operation.
//
// Operation indices count the device's state-mutating operations (programs
// and erases; reads mutate nothing and are not counted) since construction,
// starting at 1. They advance identically with or without a plan installed,
// so a cut point observed on a fault-free reference run lands on the same
// operation when replayed under a plan.
//
// Failure semantics (see DESIGN.md "Fault model and power-loss recovery"):
//   * A failed program consumes the page — it transitions free → invalid
//     with torn OOB (seq 0) and is never handed to the caller, who retries
//     on the next page. Only sequential ProgramPage calls fail; the
//     fixed-offset ProgramPageAt path (block-level FTL baselines modeling
//     older SLC parts) is exempt.
//   * A failed erase leaves the block's contents intact and marks the block
//     bad; callers must retire it instead of reusing it.
//   * A power cut is modeled by snapshotting the device state just before
//     the cut operation and letting simulation continue; RestoreToCutInstant
//     rolls the device back to that instant (the cut operation itself
//     becomes a torn page for programs, a no-op for erases) so a fresh FTL
//     can be recovered from the surviving flash state.

#ifndef SRC_FLASH_FAULT_H_
#define SRC_FLASH_FAULT_H_

#include <cstdint>
#include <vector>

#include "src/flash/types.h"
#include "src/util/rng.h"

namespace tpftl {

struct FaultPlan {
  static constexpr uint64_t kNoPowerCut = ~0ULL;

  uint64_t seed = 1;  // Drives the probabilistic failures below.

  // Probability that any one sequential program / erase fails.
  double program_fail_prob = 0.0;
  double erase_fail_prob = 0.0;

  // Exact operation indices (1-based) that fail, independent of the
  // probabilities. An index that turns out to be an erase (resp. program)
  // when listed under programs (resp. erases) simply never fires.
  std::vector<uint64_t> fail_program_at;
  std::vector<uint64_t> fail_erase_at;

  // Factory-marked bad blocks; allocators must skip them. Install the plan
  // before constructing the FTL for these to take effect from the start.
  std::vector<BlockId> bad_blocks;

  // First operation index at which power is lost (kNoPowerCut = never).
  uint64_t power_cut_at_op = kNoPowerCut;
};

// Per-device plan evaluator; owned by NandFlash while a plan is installed.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan);

  bool ShouldFailProgram(uint64_t op_index);
  bool ShouldFailErase(uint64_t op_index);
  bool PowerCutReached(uint64_t op_index) const {
    return op_index >= plan_.power_cut_at_op;
  }

  const FaultPlan& plan() const { return plan_; }

 private:
  FaultPlan plan_;  // fail_*_at kept sorted for binary search.
  Rng rng_;
};

}  // namespace tpftl

#endif  // SRC_FLASH_FAULT_H_
