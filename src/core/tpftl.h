// TPFTL — the paper's translation-page-level demand FTL (§4).
//
// Combines:
//   * the two-level LRU cache (TwoLevelCache, §4.1/§4.2) with compressed
//     6-byte entries and page-level hotness ordering;
//   * the workload-adaptive loading policy (§4.3): request-level prefetching
//     of the remaining pages of the current host request, and selective
//     prefetching of sequential successors driven by the TP-node counter;
//   * the efficient replacement policy (§4.4): batch-update writeback of all
//     dirty entries sharing the victim's translation page, and clean-first
//     victim selection;
//   * the prefetch/replacement integration rules (§4.5): prefetching never
//     crosses the requested entry's translation page, and evictions on
//     behalf of prefetched entries come from a single cached TP node.
//
// Each technique can be toggled independently for the Figure 7/8 ablation
// ('r' request prefetch, 's' selective prefetch, 'b' batch update, 'c'
// clean first; "--" disables all four, "rsbc" is the complete TPFTL).

#ifndef SRC_CORE_TPFTL_H_
#define SRC_CORE_TPFTL_H_

#include <string>

#include "src/core/prefetcher.h"
#include "src/core/two_level_cache.h"
#include "src/ftl/demand_ftl.h"

namespace tpftl {

struct TpftlOptions {
  bool request_prefetch = true;    // 'r'
  bool selective_prefetch = true;  // 's'
  bool batch_update = true;        // 'b'
  bool clean_first = true;         // 'c'
  int selective_threshold = 3;
  uint64_t entry_bytes = 6;
  uint64_t node_overhead_bytes = 16;

  // "rsbc", "bc", "--", ... — the Figure 7/8 configuration monogram.
  std::string Label() const;
  static TpftlOptions FromLabel(const std::string& label);
};

class Tpftl : public DemandFtl {
 public:
  Tpftl(const FtlEnv& env, const TpftlOptions& options = {});

  std::string name() const override { return "TPFTL"; }
  void BeginRequest(const IoRequest& request) override;
  Ppn Probe(Lpn lpn) const override;
  uint64_t cache_bytes_used() const override { return cache_.bytes_used(); }
  uint64_t cache_entry_count() const override { return cache_.entry_count(); }

  const TwoLevelCache& cache() const { return cache_; }
  const SelectivePrefetcher& prefetcher() const { return prefetcher_; }
  const TpftlOptions& options() const { return options_; }

 protected:
  MicroSec Translate(Lpn lpn, bool is_write, Ppn* current) override;
  MicroSec CommitMapping(Lpn lpn, Ppn new_ppn) override;
  bool GcUpdateCached(Lpn lpn, Ppn new_ppn, MicroSec* extra_time) override;
  MicroSec GcRewriteTranslation(Vtpn vtpn, std::vector<MappingUpdate>& updates) override;
  void CollectCheckpointDirty(std::vector<DirtyMapping>* out) override;

 private:
  // Writes back / drops one victim per the replacement policy; updates the
  // prefetch counter when a TP node disappears.
  MicroSec EvictVictim(const TwoLevelCache::Victim& victim);
  // Makes room for and inserts `lpn`. For prefetched entries (`requested` is
  // the entry that triggered the miss) the §4.5 rules apply: give up instead
  // of evicting the requested entry or spilling past `*restrict_node`.
  // Returns false when the insert was abandoned (prefetch only).
  bool InsertEntry(Lpn lpn, bool prefetched, Lpn requested, Vtpn* restrict_node, MicroSec* t);

  TpftlOptions options_;
  TwoLevelCache cache_;
  SelectivePrefetcher prefetcher_;
  Lpn request_first_ = kInvalidLpn;
  Lpn request_last_ = kInvalidLpn;
};

}  // namespace tpftl

#endif  // SRC_CORE_TPFTL_H_
