// The two-level LRU mapping cache of TPFTL (§4.1, §4.2).
//
// Cached mapping entries are clustered by translation page: each cached
// translation page with at least one cached entry is represented by a
// TP node; the TP nodes form the page-level list, ordered by page-level
// hotness (the average hotness of the node's entry nodes, hotness being a
// global access clock); each TP node holds an entry-level LRU list of its
// cached entries.
//
// Space accounting is byte-accurate: entries cost 6 B (the LPN is implied by
// the node's VTPN plus a 10-bit in-page offset, so only the 4 B PPN, the
// offset, and flags are stored — §4.1), plus a fixed per-node overhead.
// Eviction policy (who to evict, batch updates, writebacks) lives in Tpftl;
// this class provides victim selection primitives and bookkeeping.
//
// Hot-path layout (see DESIGN.md "Mapping-cache internals"): entry nodes
// live in one contiguous slab (`arena_`) and are linked by 32-bit indices
// instead of heap-allocated list nodes; each TP node resolves slots through
// a direct-mapped slot→arena-index table (slots < entries_per_page), so a
// cache hit does no allocation and no per-entry hashing. Entry recency is
// kept as two segregated intrusive LRU lists per node (clean and dirty),
// which makes clean-first victim selection O(1) instead of a reverse scan.
// Page-level ordering is lazy: touches only flag a node as having a stale
// hotness key; the cold-ordering min-heap is reconciled when PickVictim
// actually runs, turning the former O(log N)-per-hit set maintenance into
// O(1) amortized.

#ifndef SRC_CORE_TWO_LEVEL_CACHE_H_
#define SRC_CORE_TWO_LEVEL_CACHE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/flash/types.h"
#include "src/ftl/translation_store.h"

namespace tpftl {

struct TwoLevelCacheOptions {
  uint64_t budget_bytes = 0;
  uint64_t entry_bytes = 6;
  uint64_t node_overhead_bytes = 16;
  uint64_t entries_per_page = 1024;
};

class TwoLevelCache {
 public:
  struct Victim {
    Vtpn vtpn = kInvalidVtpn;
    uint64_t slot = 0;
    Lpn lpn = kInvalidLpn;
    Ppn ppn = kInvalidPpn;
    bool dirty = false;
  };

  explicit TwoLevelCache(const TwoLevelCacheOptions& options);

  // Hit path: returns the PPN and refreshes entry + page hotness.
  std::optional<Ppn> Lookup(Lpn lpn);
  // Side-effect-free probe.
  std::optional<Ppn> Peek(Lpn lpn) const;
  bool Contains(Lpn lpn) const;

  // Inserts a new entry (must be absent). Returns true when this created a
  // new TP node (feeds the selective-prefetch counter).
  bool Insert(Lpn lpn, Ppn ppn, bool dirty);

  // Updates an existing entry's value/dirty bit and touches it. Returns
  // false when the entry is not cached.
  bool Update(Lpn lpn, Ppn ppn, bool dirty);

  // Bytes Insert(lpn, ...) would consume right now.
  uint64_t CostOfInsert(Lpn lpn) const;
  bool HasSpaceFor(Lpn lpn) const { return bytes_used_ + CostOfInsert(lpn) <= budget_bytes_; }

  // Victim from the coldest TP node: its LRU clean entry when `clean_first`
  // and one exists, otherwise its LRU entry. nullopt when the cache is empty.
  std::optional<Victim> PickVictim(bool clean_first) const;

  // Removes one entry. Returns true when its TP node vanished with it.
  bool Evict(Vtpn vtpn, uint64_t slot);

  // Dirty entries of one TP node, as flash mapping updates (§4.4 batch
  // update). MarkAllClean resets their dirty bits and returns the count.
  std::vector<MappingUpdate> DirtyEntriesOf(Vtpn vtpn) const;
  uint64_t MarkAllClean(Vtpn vtpn);

  // Number of cached entries immediately preceding `lpn` (consecutive LPNs,
  // same translation page) — the selective prefetch length (§4.3).
  uint64_t CachedPredecessors(Lpn lpn) const;

  bool NodeCached(Vtpn vtpn) const { return nodes_.contains(vtpn); }
  uint64_t DirtyCountOf(Vtpn vtpn) const;

  uint64_t bytes_used() const { return bytes_used_; }
  uint64_t budget_bytes() const { return budget_bytes_; }
  uint64_t entry_count() const { return entry_count_; }
  uint64_t node_count() const { return nodes_.size(); }
  uint64_t dirty_entry_count() const { return dirty_count_; }

  // Introspection for the Figure 1/2 reproductions: per-node entry counts.
  void ForEachNode(
      const std::function<void(Vtpn, uint64_t entries, uint64_t dirty)>& fn) const;

 private:
  // Sentinel for "no arena index" in intrusive links and slot tables.
  static constexpr uint32_t kNil = 0xFFFFFFFFu;

  // Slab-allocated entry node: fixed-size, linked by arena indices. `prev`
  // points toward the MRU end, `next` toward the LRU end of whichever
  // (clean or dirty) list the entry currently sits in. Freed entries are
  // chained through `next` onto the free list.
  struct EntryNode {
    uint32_t prev = kNil;
    uint32_t next = kNil;
    uint32_t slot = 0;
    bool dirty = false;
    Ppn ppn = kInvalidPpn;
    uint64_t hot = 0;
  };

  // Intrusive list endpoints. head = MRU, tail = LRU. Both lists of a node
  // are individually recency-sorted (hot strictly descending from head),
  // because every membership change goes through a touch that assigns the
  // globally maximal clock — except MarkAllClean, which merges by hot.
  struct List {
    uint32_t head = kNil;
    uint32_t tail = kNil;
  };

  struct TpNode {
    Vtpn vtpn = kInvalidVtpn;
    List clean;
    List dirty;
    uint32_t entry_count = 0;
    uint32_t dirty_count = 0;
    double hot_sum = 0.0;
    // Direct-mapped slot → arena index (kNil when absent). Recycled through
    // slot_table_pool_; dying nodes return it all-kNil by construction
    // (every Evict clears its own slot).
    std::vector<uint32_t> slots;
    // True while the node's hotness key is queued in pending_ and not yet
    // reflected in heap_ (mutable: reconciled inside const PickVictim).
    mutable bool pending = false;
  };

  TpNode* FindNode(Vtpn vtpn);
  const TpNode* FindNode(Vtpn vtpn) const;

  static double NodeKey(const TpNode& node) {
    return node.entry_count == 0
               ? 0.0
               : node.hot_sum / static_cast<double>(node.entry_count);
  }

  uint32_t AllocEntry();
  void FreeEntry(uint32_t idx);
  void Detach(TpNode& node, uint32_t idx);
  void PushFront(List& list, uint32_t idx);
  void Touch(TpNode& node, uint32_t idx);
  void MarkPending(const TpNode& node) const;
  void FlushPending() const;
  void RebuildHeap() const;
  Lpn LpnOf(Vtpn vtpn, uint64_t slot) const { return vtpn * entries_per_page_ + slot; }

  uint64_t budget_bytes_;
  uint64_t entry_bytes_;
  uint64_t node_overhead_bytes_;
  uint64_t entries_per_page_;

  std::unordered_map<Vtpn, TpNode> nodes_;
  std::vector<EntryNode> arena_;
  uint32_t free_head_ = kNil;
  std::vector<std::vector<uint32_t>> slot_table_pool_;

  // Lazy cold-ordering: a min-heap of (page hotness key, vtpn) candidates.
  // Entries are appended only when PickVictim reconciles `pending_`; stale
  // duplicates are skipped on pop by comparing against the node's current
  // key (equal key + live node ⇒ valid ordering evidence, regardless of
  // which update pushed it). Rebuilt from scratch when garbage dominates.
  mutable std::vector<std::pair<double, Vtpn>> heap_;
  mutable std::vector<Vtpn> pending_;

  uint64_t clock_ = 0;
  uint64_t bytes_used_ = 0;
  uint64_t entry_count_ = 0;
  uint64_t dirty_count_ = 0;
};

}  // namespace tpftl

#endif  // SRC_CORE_TWO_LEVEL_CACHE_H_
