// The two-level LRU mapping cache of TPFTL (§4.1, §4.2).
//
// Cached mapping entries are clustered by translation page: each cached
// translation page with at least one cached entry is represented by a
// TP node; the TP nodes form the page-level list, ordered by page-level
// hotness (the average hotness of the node's entry nodes, hotness being a
// global access clock); each TP node holds an entry-level LRU list of its
// cached entries.
//
// Space accounting is byte-accurate: entries cost 6 B (the LPN is implied by
// the node's VTPN plus a 10-bit in-page offset, so only the 4 B PPN, the
// offset, and flags are stored — §4.1), plus a fixed per-node overhead.
// Eviction policy (who to evict, batch updates, writebacks) lives in Tpftl;
// this class provides victim selection primitives and bookkeeping.

#ifndef SRC_CORE_TWO_LEVEL_CACHE_H_
#define SRC_CORE_TWO_LEVEL_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <optional>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/flash/types.h"
#include "src/ftl/translation_store.h"

namespace tpftl {

struct TwoLevelCacheOptions {
  uint64_t budget_bytes = 0;
  uint64_t entry_bytes = 6;
  uint64_t node_overhead_bytes = 16;
  uint64_t entries_per_page = 1024;
};

class TwoLevelCache {
 public:
  struct Victim {
    Vtpn vtpn = kInvalidVtpn;
    uint64_t slot = 0;
    Lpn lpn = kInvalidLpn;
    Ppn ppn = kInvalidPpn;
    bool dirty = false;
  };

  explicit TwoLevelCache(const TwoLevelCacheOptions& options);

  // Hit path: returns the PPN and refreshes entry + page hotness.
  std::optional<Ppn> Lookup(Lpn lpn);
  // Side-effect-free probe.
  std::optional<Ppn> Peek(Lpn lpn) const;
  bool Contains(Lpn lpn) const;

  // Inserts a new entry (must be absent). Returns true when this created a
  // new TP node (feeds the selective-prefetch counter).
  bool Insert(Lpn lpn, Ppn ppn, bool dirty);

  // Updates an existing entry's value/dirty bit and touches it. Returns
  // false when the entry is not cached.
  bool Update(Lpn lpn, Ppn ppn, bool dirty);

  // Bytes Insert(lpn, ...) would consume right now.
  uint64_t CostOfInsert(Lpn lpn) const;
  bool HasSpaceFor(Lpn lpn) const { return bytes_used_ + CostOfInsert(lpn) <= budget_bytes_; }

  // Victim from the coldest TP node: its LRU clean entry when `clean_first`
  // and one exists, otherwise its LRU entry. nullopt when the cache is empty.
  std::optional<Victim> PickVictim(bool clean_first) const;

  // Removes one entry. Returns true when its TP node vanished with it.
  bool Evict(Vtpn vtpn, uint64_t slot);

  // Dirty entries of one TP node, as flash mapping updates (§4.4 batch
  // update). MarkAllClean resets their dirty bits and returns the count.
  std::vector<MappingUpdate> DirtyEntriesOf(Vtpn vtpn) const;
  uint64_t MarkAllClean(Vtpn vtpn);

  // Number of cached entries immediately preceding `lpn` (consecutive LPNs,
  // same translation page) — the selective prefetch length (§4.3).
  uint64_t CachedPredecessors(Lpn lpn) const;

  bool NodeCached(Vtpn vtpn) const { return nodes_.contains(vtpn); }
  uint64_t DirtyCountOf(Vtpn vtpn) const;

  uint64_t bytes_used() const { return bytes_used_; }
  uint64_t budget_bytes() const { return budget_bytes_; }
  uint64_t entry_count() const { return entry_count_; }
  uint64_t node_count() const { return nodes_.size(); }
  uint64_t dirty_entry_count() const { return dirty_count_; }

  // Introspection for the Figure 1/2 reproductions: per-node entry counts.
  void ForEachNode(
      const std::function<void(Vtpn, uint64_t entries, uint64_t dirty)>& fn) const;

 private:
  struct EntryNode {
    uint64_t slot = 0;
    Ppn ppn = kInvalidPpn;
    bool dirty = false;
    uint64_t hot = 0;
  };
  using EntryList = std::list<EntryNode>;

  struct TpNode {
    Vtpn vtpn = kInvalidVtpn;
    EntryList lru;  // MRU at front.
    std::unordered_map<uint64_t, EntryList::iterator> index;
    double hot_sum = 0.0;
    uint64_t dirty_count = 0;
    double order_key = 0.0;  // Current key inside order_.
  };

  TpNode* FindNode(Vtpn vtpn);
  const TpNode* FindNode(Vtpn vtpn) const;
  void Reorder(TpNode& node);
  void Touch(TpNode& node, EntryList::iterator entry);
  Lpn LpnOf(Vtpn vtpn, uint64_t slot) const { return vtpn * entries_per_page_ + slot; }

  uint64_t budget_bytes_;
  uint64_t entry_bytes_;
  uint64_t node_overhead_bytes_;
  uint64_t entries_per_page_;

  std::unordered_map<Vtpn, TpNode> nodes_;
  // Ascending page-level hotness: begin() is the coldest TP node.
  std::set<std::pair<double, Vtpn>> order_;
  uint64_t clock_ = 0;
  uint64_t bytes_used_ = 0;
  uint64_t entry_count_ = 0;
  uint64_t dirty_count_ = 0;
};

}  // namespace tpftl

#endif  // SRC_CORE_TWO_LEVEL_CACHE_H_
