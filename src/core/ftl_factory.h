// Construction of any FTL flavor by kind.

#ifndef SRC_CORE_FTL_FACTORY_H_
#define SRC_CORE_FTL_FACTORY_H_

#include <memory>
#include <optional>
#include <string>

#include "src/core/tpftl.h"
#include "src/ftl/demand_ftl.h"
#include "src/ftl/ftl.h"

namespace tpftl {

enum class FtlKind { kOptimal, kDftl, kCdftl, kSftl, kTpftl, kBlockFtl, kFast, kZftl, kLearned };

const char* FtlKindName(FtlKind kind);
std::optional<FtlKind> FtlKindByName(const std::string& name);

// `tpftl_options` applies only to kTpftl.
std::unique_ptr<Ftl> CreateFtl(FtlKind kind, const FtlEnv& env,
                               const TpftlOptions& tpftl_options = {});

}  // namespace tpftl

#endif  // SRC_CORE_FTL_FACTORY_H_
