// Selective-prefetch activation logic (§4.3).
//
// Observation (§3.2, Fig. 2(b)): during sequential bursts the number of
// cached TP nodes shrinks (consecutive entries pile into few translation
// pages); when the burst ends it grows back. A signed counter tracks the
// net change — +1 per TP node loaded, −1 per TP node evicted — and when its
// magnitude reaches the threshold (3 in the paper), selective prefetching is
// switched off (counter positive: random phase) or on (counter negative:
// sequential phase) and the counter resets.

#ifndef SRC_CORE_PREFETCHER_H_
#define SRC_CORE_PREFETCHER_H_

#include <cstdint>
#include <cstdlib>

namespace tpftl {

class SelectivePrefetcher {
 public:
  explicit SelectivePrefetcher(int threshold = 3) : threshold_(threshold) {}

  void OnNodeLoaded() { Bump(+1); }
  void OnNodeEvicted() { Bump(-1); }

  bool active() const { return active_; }
  int counter() const { return counter_; }
  int threshold() const { return threshold_; }

  // Activation flips recorded since construction (diagnostics).
  uint64_t activations() const { return activations_; }
  uint64_t deactivations() const { return deactivations_; }

 private:
  void Bump(int delta) {
    counter_ += delta;
    if (std::abs(counter_) < threshold_) {
      return;
    }
    if (counter_ > 0) {
      if (active_) {
        ++deactivations_;
      }
      active_ = false;
    } else {
      if (!active_) {
        ++activations_;
      }
      active_ = true;
    }
    counter_ = 0;
  }

  int threshold_;
  int counter_ = 0;
  bool active_ = false;
  uint64_t activations_ = 0;
  uint64_t deactivations_ = 0;
};

}  // namespace tpftl

#endif  // SRC_CORE_PREFETCHER_H_
