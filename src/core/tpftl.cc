#include "src/core/tpftl.h"

#include <algorithm>

#include "src/obs/phase.h"
#include "src/util/assert.h"

namespace tpftl {

std::string TpftlOptions::Label() const {
  std::string label;
  if (request_prefetch) {
    label += 'r';
  }
  if (selective_prefetch) {
    label += 's';
  }
  if (batch_update) {
    label += 'b';
  }
  if (clean_first) {
    label += 'c';
  }
  return label.empty() ? "--" : label;
}

TpftlOptions TpftlOptions::FromLabel(const std::string& label) {
  TpftlOptions o;
  o.request_prefetch = label.find('r') != std::string::npos;
  o.selective_prefetch = label.find('s') != std::string::npos;
  o.batch_update = label.find('b') != std::string::npos;
  o.clean_first = label.find('c') != std::string::npos;
  return o;
}

Tpftl::Tpftl(const FtlEnv& env, const TpftlOptions& options)
    : DemandFtl(env, /*uses_translation_store=*/true),
      options_(options),
      cache_(TwoLevelCacheOptions{
          .budget_bytes = entry_cache_budget_bytes(),
          .entry_bytes = options.entry_bytes,
          .node_overhead_bytes = options.node_overhead_bytes,
          .entries_per_page = env.flash->geometry().entries_per_translation_page()}),
      prefetcher_(options.selective_threshold) {}

void Tpftl::BeginRequest(const IoRequest& request) {
  const uint64_t page_size = flash().geometry().page_size_bytes;
  request_first_ = request.FirstLpn(page_size);
  request_last_ = request.LastLpn(page_size);
}

MicroSec Tpftl::EvictVictim(const TwoLevelCache::Victim& victim) {
  AtStats& s = mutable_stats();
  MicroSec t = 0.0;
  ++s.evictions;
  if (victim.dirty) {
    ++s.dirty_evictions;
    obs::EmitInstant("dirty_eviction");
    if (options_.batch_update) {
      // Write back every dirty entry sharing the victim's translation page
      // in a single read-modify-write; they stay cached, now clean (§4.4).
      std::vector<MappingUpdate> updates = cache_.DirtyEntriesOf(victim.vtpn);
      TPFTL_DCHECK(!updates.empty());
      const auto r =
          store().RewriteTranslationPage(victim.vtpn, updates, /*have_full_content=*/false);
      ++s.trans_reads_at;
      ++s.trans_writes_at;
      s.batch_writebacks += cache_.MarkAllClean(victim.vtpn);
      t += r.time;
    } else {
      const MappingUpdate update{victim.lpn, victim.ppn};
      const auto r = store().RewriteTranslationPage(victim.vtpn, {&update, 1},
                                                    /*have_full_content=*/false);
      ++s.trans_reads_at;
      ++s.trans_writes_at;
      t += r.time;
    }
  }
  if (cache_.Evict(victim.vtpn, victim.slot)) {
    prefetcher_.OnNodeEvicted();
  }
  return t;
}

bool Tpftl::InsertEntry(Lpn lpn, bool prefetched, Lpn requested, Vtpn* restrict_node,
                        MicroSec* t) {
  if (cache_.CostOfInsert(lpn) > cache_.budget_bytes()) {
    // Degenerate budget: no amount of eviction makes this entry fit. The
    // FTL runs uncached — CommitMapping writes the binding through.
    return false;
  }
  while (!cache_.HasSpaceFor(lpn)) {
    const auto victim = cache_.PickVictim(options_.clean_first);
    if (!victim.has_value()) {
      break;  // Degenerate budget: accept a transient overshoot.
    }
    // Never evict the entry this miss is resolving.
    if (victim->lpn == requested) {
      if (prefetched) {
        return false;
      }
      break;
    }
    if (prefetched) {
      // §4.5 rule 2: replacements on behalf of prefetched entries stay
      // within one cached translation page.
      if (*restrict_node != kInvalidVtpn && victim->vtpn != *restrict_node) {
        return false;
      }
    }
    *restrict_node = victim->vtpn;
    *t += EvictVictim(*victim);
  }
  if (cache_.Insert(lpn, store().Persisted(lpn), /*dirty=*/false)) {
    prefetcher_.OnNodeLoaded();
  }
  return true;
}

MicroSec Tpftl::Translate(Lpn lpn, bool is_write, Ppn* current) {
  (void)is_write;
  AtStats& s = mutable_stats();
  ++s.lookups;
  if (const auto hit = cache_.Lookup(lpn)) {
    ++s.hits;
    *current = *hit;
    return 0.0;
  }
  ++s.misses;
  obs::EmitInstant("cache_miss");
  const Vtpn vtpn = store().VtpnOf(lpn);
  MicroSec t = store().ReadTranslationPage(vtpn);
  ++s.trans_reads_at;

  // Loading policy (§4.3): how many successors to prefetch alongside the
  // requested entry. Rule 1 (§4.5) caps at the translation page boundary.
  const uint64_t slot = store().SlotOf(lpn);
  const uint64_t page_cap = store().entries_per_page() - 1 - slot;
  uint64_t prefetch_len = 0;
  if (options_.request_prefetch && request_last_ != kInvalidLpn && lpn >= request_first_ &&
      lpn <= request_last_) {
    prefetch_len = std::max(prefetch_len, std::min(request_last_ - lpn, page_cap));
  }
  if (options_.selective_prefetch && prefetcher_.active()) {
    prefetch_len = std::max(prefetch_len, std::min(cache_.CachedPredecessors(lpn), page_cap));
  }

  Vtpn restrict_node = kInvalidVtpn;
  InsertEntry(lpn, /*prefetched=*/false, lpn, &restrict_node, &t);
  for (uint64_t i = 1; i <= prefetch_len; ++i) {
    const Lpn successor = lpn + i;
    if (successor >= logical_pages()) {
      break;
    }
    if (cache_.Contains(successor)) {
      continue;
    }
    if (!InsertEntry(successor, /*prefetched=*/true, lpn, &restrict_node, &t)) {
      break;
    }
  }

  *current = store().Persisted(lpn);
  return t;
}

MicroSec Tpftl::CommitMapping(Lpn lpn, Ppn new_ppn) {
  if (cache_.Update(lpn, new_ppn, /*dirty=*/true)) {
    return 0.0;
  }
  // Degenerate budget: Translate could not cache the entry, so the binding
  // is written through to its translation page immediately.
  AtStats& s = mutable_stats();
  const MappingUpdate update{lpn, new_ppn};
  const auto r = store().RewriteTranslationPage(store().VtpnOf(lpn), {&update, 1},
                                                /*have_full_content=*/false);
  ++s.trans_reads_at;
  ++s.trans_writes_at;
  return r.time;
}

bool Tpftl::GcUpdateCached(Lpn lpn, Ppn new_ppn, MicroSec* extra_time) {
  (void)extra_time;
  return cache_.Update(lpn, new_ppn, /*dirty=*/true);
}

MicroSec Tpftl::GcRewriteTranslation(Vtpn vtpn, std::vector<MappingUpdate>& updates) {
  if (options_.batch_update && cache_.NodeCached(vtpn)) {
    // §4.4: a GC-miss rewrite of a cached translation page also flushes the
    // page's cached dirty entries, which remain cached and become clean.
    // (GC misses are by definition not cached, so there is no overlap.)
    std::vector<MappingUpdate> cached_dirty = cache_.DirtyEntriesOf(vtpn);
    updates.insert(updates.end(), cached_dirty.begin(), cached_dirty.end());
    mutable_stats().batch_writebacks += cache_.MarkAllClean(vtpn);
  }
  return DemandFtl::GcRewriteTranslation(vtpn, updates);
}

Ppn Tpftl::Probe(Lpn lpn) const {
  if (const auto cached = cache_.Peek(lpn)) {
    return *cached;
  }
  return translation_store().Persisted(lpn);
}

void Tpftl::CollectCheckpointDirty(std::vector<DirtyMapping>* out) {
  cache_.ForEachNode([this, out](Vtpn vtpn, uint64_t entries, uint64_t dirty) {
    (void)entries;
    if (dirty == 0) {
      return;
    }
    for (const MappingUpdate& u : cache_.DirtyEntriesOf(vtpn)) {
      out->push_back({u.lpn, u.ppn});
    }
  });
}

}  // namespace tpftl
