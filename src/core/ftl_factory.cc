#include "src/core/ftl_factory.h"

#include "src/ftl/block_ftl.h"
#include "src/ftl/cdftl.h"
#include "src/ftl/dftl.h"
#include "src/ftl/fast_ftl.h"
#include "src/ftl/learned_ftl.h"
#include "src/ftl/optimal_ftl.h"
#include "src/ftl/sftl.h"
#include "src/ftl/zftl.h"
#include "src/util/assert.h"
#include "src/util/str.h"

namespace tpftl {

const char* FtlKindName(FtlKind kind) {
  switch (kind) {
    case FtlKind::kOptimal:
      return "Optimal";
    case FtlKind::kDftl:
      return "DFTL";
    case FtlKind::kCdftl:
      return "CDFTL";
    case FtlKind::kSftl:
      return "S-FTL";
    case FtlKind::kTpftl:
      return "TPFTL";
    case FtlKind::kBlockFtl:
      return "BlockFTL";
    case FtlKind::kFast:
      return "FAST";
    case FtlKind::kZftl:
      return "ZFTL";
    case FtlKind::kLearned:
      return "LearnedFTL";
  }
  return "?";
}

std::optional<FtlKind> FtlKindByName(const std::string& name) {
  if (EqualsIgnoreCase(name, "optimal")) {
    return FtlKind::kOptimal;
  }
  if (EqualsIgnoreCase(name, "dftl")) {
    return FtlKind::kDftl;
  }
  if (EqualsIgnoreCase(name, "cdftl")) {
    return FtlKind::kCdftl;
  }
  if (EqualsIgnoreCase(name, "sftl") || EqualsIgnoreCase(name, "s-ftl")) {
    return FtlKind::kSftl;
  }
  if (EqualsIgnoreCase(name, "tpftl")) {
    return FtlKind::kTpftl;
  }
  if (EqualsIgnoreCase(name, "blockftl") || EqualsIgnoreCase(name, "block")) {
    return FtlKind::kBlockFtl;
  }
  if (EqualsIgnoreCase(name, "fast")) {
    return FtlKind::kFast;
  }
  if (EqualsIgnoreCase(name, "zftl")) {
    return FtlKind::kZftl;
  }
  if (EqualsIgnoreCase(name, "learnedftl") || EqualsIgnoreCase(name, "learned")) {
    return FtlKind::kLearned;
  }
  return std::nullopt;
}

std::unique_ptr<Ftl> CreateFtl(FtlKind kind, const FtlEnv& env,
                               const TpftlOptions& tpftl_options) {
  switch (kind) {
    case FtlKind::kOptimal:
      return std::make_unique<OptimalFtl>(env);
    case FtlKind::kDftl:
      return std::make_unique<Dftl>(env);
    case FtlKind::kCdftl:
      return std::make_unique<Cdftl>(env);
    case FtlKind::kSftl:
      return std::make_unique<Sftl>(env);
    case FtlKind::kTpftl:
      return std::make_unique<Tpftl>(env, tpftl_options);
    case FtlKind::kBlockFtl:
      return std::make_unique<BlockFtl>(env);
    case FtlKind::kFast:
      return std::make_unique<FastFtl>(env);
    case FtlKind::kZftl:
      return std::make_unique<Zftl>(env);
    case FtlKind::kLearned:
      return std::make_unique<LearnedFtl>(env);
  }
  TPFTL_CHECK_MSG(false, "unknown FTL kind");
  return nullptr;
}

}  // namespace tpftl
