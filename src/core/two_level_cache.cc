#include "src/core/two_level_cache.h"

#include "src/util/assert.h"

namespace tpftl {

TwoLevelCache::TwoLevelCache(const TwoLevelCacheOptions& options)
    : budget_bytes_(options.budget_bytes),
      entry_bytes_(options.entry_bytes),
      node_overhead_bytes_(options.node_overhead_bytes),
      entries_per_page_(options.entries_per_page) {
  TPFTL_CHECK(entries_per_page_ > 0);
  TPFTL_CHECK_MSG(budget_bytes_ >= node_overhead_bytes_ + entry_bytes_,
                  "cache budget too small for even one entry");
}

TwoLevelCache::TpNode* TwoLevelCache::FindNode(Vtpn vtpn) {
  const auto it = nodes_.find(vtpn);
  return it == nodes_.end() ? nullptr : &it->second;
}

const TwoLevelCache::TpNode* TwoLevelCache::FindNode(Vtpn vtpn) const {
  const auto it = nodes_.find(vtpn);
  return it == nodes_.end() ? nullptr : &it->second;
}

void TwoLevelCache::Reorder(TpNode& node) {
  order_.erase({node.order_key, node.vtpn});
  node.order_key = node.lru.empty()
                       ? 0.0
                       : node.hot_sum / static_cast<double>(node.lru.size());
  order_.insert({node.order_key, node.vtpn});
}

void TwoLevelCache::Touch(TpNode& node, EntryList::iterator entry) {
  const uint64_t now = ++clock_;
  node.hot_sum += static_cast<double>(now) - static_cast<double>(entry->hot);
  entry->hot = now;
  node.lru.splice(node.lru.begin(), node.lru, entry);
  Reorder(node);
}

std::optional<Ppn> TwoLevelCache::Lookup(Lpn lpn) {
  TpNode* node = FindNode(lpn / entries_per_page_);
  if (node == nullptr) {
    return std::nullopt;
  }
  const auto it = node->index.find(lpn % entries_per_page_);
  if (it == node->index.end()) {
    return std::nullopt;
  }
  Touch(*node, it->second);
  return it->second->ppn;
}

std::optional<Ppn> TwoLevelCache::Peek(Lpn lpn) const {
  const TpNode* node = FindNode(lpn / entries_per_page_);
  if (node == nullptr) {
    return std::nullopt;
  }
  const auto it = node->index.find(lpn % entries_per_page_);
  if (it == node->index.end()) {
    return std::nullopt;
  }
  return it->second->ppn;
}

bool TwoLevelCache::Contains(Lpn lpn) const { return Peek(lpn).has_value(); }

uint64_t TwoLevelCache::CostOfInsert(Lpn lpn) const {
  return entry_bytes_ + (nodes_.contains(lpn / entries_per_page_) ? 0 : node_overhead_bytes_);
}

bool TwoLevelCache::Insert(Lpn lpn, Ppn ppn, bool dirty) {
  const Vtpn vtpn = lpn / entries_per_page_;
  const uint64_t slot = lpn % entries_per_page_;
  bool created = false;
  auto it = nodes_.find(vtpn);
  if (it == nodes_.end()) {
    it = nodes_.emplace(vtpn, TpNode{}).first;
    it->second.vtpn = vtpn;
    order_.insert({0.0, vtpn});
    it->second.order_key = 0.0;
    bytes_used_ += node_overhead_bytes_;
    created = true;
  }
  TpNode& node = it->second;
  TPFTL_CHECK_MSG(!node.index.contains(slot), "Insert of an already-cached entry");
  node.lru.push_front(EntryNode{slot, ppn, dirty, ++clock_});
  node.index[slot] = node.lru.begin();
  node.hot_sum += static_cast<double>(clock_);
  node.dirty_count += dirty ? 1 : 0;
  dirty_count_ += dirty ? 1 : 0;
  bytes_used_ += entry_bytes_;
  ++entry_count_;
  Reorder(node);
  return created;
}

bool TwoLevelCache::Update(Lpn lpn, Ppn ppn, bool dirty) {
  TpNode* node = FindNode(lpn / entries_per_page_);
  if (node == nullptr) {
    return false;
  }
  const auto it = node->index.find(lpn % entries_per_page_);
  if (it == node->index.end()) {
    return false;
  }
  EntryNode& entry = *it->second;
  if (entry.dirty != dirty) {
    node->dirty_count += dirty ? 1 : -1;
    dirty_count_ += dirty ? 1 : -1;
    entry.dirty = dirty;
  }
  entry.ppn = ppn;
  Touch(*node, it->second);
  return true;
}

std::optional<TwoLevelCache::Victim> TwoLevelCache::PickVictim(bool clean_first) const {
  if (order_.empty()) {
    return std::nullopt;
  }
  const Vtpn coldest = order_.begin()->second;
  const TpNode* node = FindNode(coldest);
  TPFTL_CHECK(node != nullptr && !node->lru.empty());

  const EntryNode* chosen = nullptr;
  if (clean_first) {
    // LRU-most clean entry of the coldest node (§4.4 clean-first).
    for (auto it = node->lru.rbegin(); it != node->lru.rend(); ++it) {
      if (!it->dirty) {
        chosen = &*it;
        break;
      }
    }
  }
  if (chosen == nullptr) {
    chosen = &node->lru.back();
  }
  return Victim{coldest, chosen->slot, LpnOf(coldest, chosen->slot), chosen->ppn, chosen->dirty};
}

bool TwoLevelCache::Evict(Vtpn vtpn, uint64_t slot) {
  auto node_it = nodes_.find(vtpn);
  TPFTL_CHECK_MSG(node_it != nodes_.end(), "Evict from a non-cached node");
  TpNode& node = node_it->second;
  const auto it = node.index.find(slot);
  TPFTL_CHECK_MSG(it != node.index.end(), "Evict of a non-cached entry");
  const EntryNode& entry = *it->second;
  node.hot_sum -= static_cast<double>(entry.hot);
  node.dirty_count -= entry.dirty ? 1 : 0;
  dirty_count_ -= entry.dirty ? 1 : 0;
  node.lru.erase(it->second);
  node.index.erase(it);
  bytes_used_ -= entry_bytes_;
  --entry_count_;
  if (node.lru.empty()) {
    order_.erase({node.order_key, vtpn});
    nodes_.erase(node_it);
    bytes_used_ -= node_overhead_bytes_;
    return true;
  }
  Reorder(node);
  return false;
}

std::vector<MappingUpdate> TwoLevelCache::DirtyEntriesOf(Vtpn vtpn) const {
  std::vector<MappingUpdate> updates;
  const TpNode* node = FindNode(vtpn);
  if (node == nullptr) {
    return updates;
  }
  updates.reserve(node->dirty_count);
  for (const EntryNode& entry : node->lru) {
    if (entry.dirty) {
      updates.push_back({LpnOf(vtpn, entry.slot), entry.ppn});
    }
  }
  return updates;
}

uint64_t TwoLevelCache::MarkAllClean(Vtpn vtpn) {
  TpNode* node = FindNode(vtpn);
  if (node == nullptr) {
    return 0;
  }
  uint64_t cleaned = 0;
  for (EntryNode& entry : node->lru) {
    if (entry.dirty) {
      entry.dirty = false;
      ++cleaned;
    }
  }
  dirty_count_ -= cleaned;
  node->dirty_count = 0;
  return cleaned;
}

uint64_t TwoLevelCache::CachedPredecessors(Lpn lpn) const {
  const Vtpn vtpn = lpn / entries_per_page_;
  const TpNode* node = FindNode(vtpn);
  if (node == nullptr) {
    return 0;
  }
  uint64_t slot = lpn % entries_per_page_;
  uint64_t count = 0;
  while (slot > 0 && node->index.contains(slot - 1)) {
    --slot;
    ++count;
  }
  return count;
}

uint64_t TwoLevelCache::DirtyCountOf(Vtpn vtpn) const {
  const TpNode* node = FindNode(vtpn);
  return node == nullptr ? 0 : node->dirty_count;
}

void TwoLevelCache::ForEachNode(
    const std::function<void(Vtpn, uint64_t, uint64_t)>& fn) const {
  for (const auto& [vtpn, node] : nodes_) {
    fn(vtpn, node.lru.size(), node.dirty_count);
  }
}

}  // namespace tpftl
