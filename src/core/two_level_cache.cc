#include "src/core/two_level_cache.h"

#include <algorithm>

#include "src/obs/phase.h"
#include "src/util/assert.h"

namespace tpftl {

TwoLevelCache::TwoLevelCache(const TwoLevelCacheOptions& options)
    : budget_bytes_(options.budget_bytes),
      entry_bytes_(options.entry_bytes),
      node_overhead_bytes_(options.node_overhead_bytes),
      entries_per_page_(options.entries_per_page) {
  TPFTL_CHECK(entries_per_page_ > 0);
  // Budgets below node_overhead + entry are legal: the cache simply never
  // admits anything and Tpftl degrades to uncached write-through.
  // The slab can never exceed the budget's worth of entries (modulo the
  // transient overshoot Tpftl allows on degenerate budgets), so pre-size it
  // up to a sane cap and let it grow beyond that lazily.
  arena_.reserve(std::min<uint64_t>(budget_bytes_ / entry_bytes_ + 1, 1u << 20));
}

TwoLevelCache::TpNode* TwoLevelCache::FindNode(Vtpn vtpn) {
  const auto it = nodes_.find(vtpn);
  return it == nodes_.end() ? nullptr : &it->second;
}

const TwoLevelCache::TpNode* TwoLevelCache::FindNode(Vtpn vtpn) const {
  const auto it = nodes_.find(vtpn);
  return it == nodes_.end() ? nullptr : &it->second;
}

uint32_t TwoLevelCache::AllocEntry() {
  if (free_head_ != kNil) {
    const uint32_t idx = free_head_;
    free_head_ = arena_[idx].next;
    return idx;
  }
  TPFTL_CHECK_MSG(arena_.size() < kNil, "mapping-cache slab exceeds 2^32-1 entries");
  arena_.emplace_back();
  return static_cast<uint32_t>(arena_.size() - 1);
}

void TwoLevelCache::FreeEntry(uint32_t idx) {
  arena_[idx].next = free_head_;
  free_head_ = idx;
}

void TwoLevelCache::Detach(TpNode& node, uint32_t idx) {
  EntryNode& entry = arena_[idx];
  List& list = entry.dirty ? node.dirty : node.clean;
  if (entry.prev != kNil) {
    arena_[entry.prev].next = entry.next;
  } else {
    list.head = entry.next;
  }
  if (entry.next != kNil) {
    arena_[entry.next].prev = entry.prev;
  } else {
    list.tail = entry.prev;
  }
  entry.prev = kNil;
  entry.next = kNil;
}

void TwoLevelCache::PushFront(List& list, uint32_t idx) {
  EntryNode& entry = arena_[idx];
  entry.prev = kNil;
  entry.next = list.head;
  if (list.head != kNil) {
    arena_[list.head].prev = idx;
  }
  list.head = idx;
  if (list.tail == kNil) {
    list.tail = idx;
  }
}

void TwoLevelCache::MarkPending(const TpNode& node) const {
  if (!node.pending) {
    node.pending = true;
    pending_.push_back(node.vtpn);
  }
}

void TwoLevelCache::Touch(TpNode& node, uint32_t idx) {
  EntryNode& entry = arena_[idx];
  Detach(node, idx);
  const uint64_t now = ++clock_;
  node.hot_sum += static_cast<double>(now) - static_cast<double>(entry.hot);
  entry.hot = now;
  PushFront(entry.dirty ? node.dirty : node.clean, idx);
  MarkPending(node);
}

std::optional<Ppn> TwoLevelCache::Lookup(Lpn lpn) {
  TpNode* node = FindNode(lpn / entries_per_page_);
  if (node == nullptr) {
    return std::nullopt;
  }
  const uint32_t idx = node->slots[lpn % entries_per_page_];
  if (idx == kNil) {
    return std::nullopt;
  }
  Touch(*node, idx);
  return arena_[idx].ppn;
}

std::optional<Ppn> TwoLevelCache::Peek(Lpn lpn) const {
  const TpNode* node = FindNode(lpn / entries_per_page_);
  if (node == nullptr) {
    return std::nullopt;
  }
  const uint32_t idx = node->slots[lpn % entries_per_page_];
  if (idx == kNil) {
    return std::nullopt;
  }
  return arena_[idx].ppn;
}

bool TwoLevelCache::Contains(Lpn lpn) const { return Peek(lpn).has_value(); }

uint64_t TwoLevelCache::CostOfInsert(Lpn lpn) const {
  return entry_bytes_ + (nodes_.contains(lpn / entries_per_page_) ? 0 : node_overhead_bytes_);
}

bool TwoLevelCache::Insert(Lpn lpn, Ppn ppn, bool dirty) {
  const Vtpn vtpn = lpn / entries_per_page_;
  const auto slot = static_cast<uint32_t>(lpn % entries_per_page_);
  bool created = false;
  auto it = nodes_.find(vtpn);
  if (it == nodes_.end()) {
    it = nodes_.emplace(vtpn, TpNode{}).first;
    TpNode& node = it->second;
    node.vtpn = vtpn;
    if (slot_table_pool_.empty()) {
      node.slots.assign(entries_per_page_, kNil);
    } else {
      node.slots = std::move(slot_table_pool_.back());
      slot_table_pool_.pop_back();
    }
    bytes_used_ += node_overhead_bytes_;
    created = true;
  }
  TpNode& node = it->second;
  TPFTL_CHECK_MSG(node.slots[slot] == kNil, "Insert of an already-cached entry");
  const uint32_t idx = AllocEntry();
  EntryNode& entry = arena_[idx];
  entry.slot = slot;
  entry.ppn = ppn;
  entry.dirty = dirty;
  entry.hot = ++clock_;
  node.slots[slot] = idx;
  PushFront(dirty ? node.dirty : node.clean, idx);
  node.hot_sum += static_cast<double>(clock_);
  ++node.entry_count;
  node.dirty_count += dirty ? 1 : 0;
  dirty_count_ += dirty ? 1 : 0;
  bytes_used_ += entry_bytes_;
  ++entry_count_;
  MarkPending(node);
  return created;
}

bool TwoLevelCache::Update(Lpn lpn, Ppn ppn, bool dirty) {
  TpNode* node = FindNode(lpn / entries_per_page_);
  if (node == nullptr) {
    return false;
  }
  const uint32_t idx = node->slots[lpn % entries_per_page_];
  if (idx == kNil) {
    return false;
  }
  EntryNode& entry = arena_[idx];
  Detach(*node, idx);
  if (entry.dirty != dirty) {
    node->dirty_count += dirty ? 1 : -1;
    dirty_count_ += dirty ? 1 : -1;
    entry.dirty = dirty;
  }
  entry.ppn = ppn;
  const uint64_t now = ++clock_;
  node->hot_sum += static_cast<double>(now) - static_cast<double>(entry.hot);
  entry.hot = now;
  PushFront(dirty ? node->dirty : node->clean, idx);
  MarkPending(*node);
  return true;
}

void TwoLevelCache::FlushPending() const {
  for (const Vtpn vtpn : pending_) {
    const TpNode* node = FindNode(vtpn);
    if (node == nullptr || !node->pending) {
      continue;  // Node died (or was already reconciled) since flagging.
    }
    node->pending = false;
    heap_.emplace_back(NodeKey(*node), vtpn);
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>());
  }
  pending_.clear();
}

void TwoLevelCache::RebuildHeap() const {
  heap_.clear();
  heap_.reserve(nodes_.size());
  for (const auto& [vtpn, node] : nodes_) {
    node.pending = false;
    heap_.emplace_back(NodeKey(node), vtpn);
  }
  std::make_heap(heap_.begin(), heap_.end(), std::greater<>());
  pending_.clear();
}

std::optional<TwoLevelCache::Victim> TwoLevelCache::PickVictim(bool clean_first) const {
  if (nodes_.empty()) {
    heap_.clear();
    pending_.clear();
    return std::nullopt;
  }
  FlushPending();
  if (heap_.size() > 64 && heap_.size() > 4 * nodes_.size()) {
    RebuildHeap();
  }
  const TpNode* node = nullptr;
  while (true) {
    // Every live node has one heap entry carrying its current key (stale
    // changes are always re-flagged), so the heap cannot run dry here.
    TPFTL_CHECK(!heap_.empty());
    const auto& [key, vtpn] = heap_.front();
    node = FindNode(vtpn);
    if (node != nullptr && NodeKey(*node) == key) {
      break;  // Valid coldest node; leave its heap entry in place.
    }
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
    heap_.pop_back();
  }
  TPFTL_CHECK(node->entry_count > 0);

  uint32_t chosen = kNil;
  if (clean_first) {
    // LRU-most clean entry of the coldest node (§4.4 clean-first), falling
    // back to the dirty LRU when the node has no clean entry.
    chosen = node->clean.tail != kNil ? node->clean.tail : node->dirty.tail;
  } else {
    // Overall LRU: the older of the two list tails (hot values are unique).
    const uint32_t ct = node->clean.tail;
    const uint32_t dt = node->dirty.tail;
    if (ct == kNil) {
      chosen = dt;
    } else if (dt == kNil) {
      chosen = ct;
    } else {
      chosen = arena_[ct].hot < arena_[dt].hot ? ct : dt;
    }
  }
  const EntryNode& entry = arena_[chosen];
  return Victim{node->vtpn, entry.slot, LpnOf(node->vtpn, entry.slot), entry.ppn, entry.dirty};
}

bool TwoLevelCache::Evict(Vtpn vtpn, uint64_t slot) {
  auto node_it = nodes_.find(vtpn);
  TPFTL_CHECK_MSG(node_it != nodes_.end(), "Evict from a non-cached node");
  TpNode& node = node_it->second;
  TPFTL_CHECK_MSG(slot < entries_per_page_, "Evict of a non-cached entry");
  const uint32_t idx = node.slots[slot];
  TPFTL_CHECK_MSG(idx != kNil, "Evict of a non-cached entry");
  EntryNode& entry = arena_[idx];
  node.hot_sum -= static_cast<double>(entry.hot);
  node.dirty_count -= entry.dirty ? 1 : 0;
  dirty_count_ -= entry.dirty ? 1 : 0;
  Detach(node, idx);
  node.slots[slot] = kNil;
  --node.entry_count;
  FreeEntry(idx);
  bytes_used_ -= entry_bytes_;
  --entry_count_;
  if (node.entry_count == 0) {
    // Slots are already all-kNil (each Evict cleared its own); recycle the
    // table so the next node creation skips the O(entries_per_page) fill.
    slot_table_pool_.push_back(std::move(node.slots));
    nodes_.erase(node_it);
    bytes_used_ -= node_overhead_bytes_;
    obs::EmitInstant("cache_node_evicted");
    return true;
  }
  MarkPending(node);
  return false;
}

std::vector<MappingUpdate> TwoLevelCache::DirtyEntriesOf(Vtpn vtpn) const {
  std::vector<MappingUpdate> updates;
  const TpNode* node = FindNode(vtpn);
  if (node == nullptr) {
    return updates;
  }
  updates.reserve(node->dirty_count);
  for (uint32_t idx = node->dirty.head; idx != kNil; idx = arena_[idx].next) {
    updates.push_back({LpnOf(vtpn, arena_[idx].slot), arena_[idx].ppn});
  }
  return updates;
}

uint64_t TwoLevelCache::MarkAllClean(Vtpn vtpn) {
  TpNode* node = FindNode(vtpn);
  if (node == nullptr || node->dirty_count == 0) {
    return 0;
  }
  // Merge the dirty list into the clean list by descending hot so the clean
  // list stays recency-sorted; entries keep their LRU positions, they just
  // stop being dirty (§4.4: batch-updated entries remain cached, clean).
  uint32_t a = node->clean.head;
  uint32_t b = node->dirty.head;
  uint32_t head = kNil;
  uint32_t tail = kNil;
  uint64_t cleaned = 0;
  while (a != kNil || b != kNil) {
    const bool take_clean = b == kNil || (a != kNil && arena_[a].hot > arena_[b].hot);
    const uint32_t idx = take_clean ? a : b;
    if (take_clean) {
      a = arena_[a].next;
    } else {
      b = arena_[b].next;
      arena_[idx].dirty = false;
      ++cleaned;
    }
    arena_[idx].prev = tail;
    if (tail == kNil) {
      head = idx;
    } else {
      arena_[tail].next = idx;
    }
    tail = idx;
  }
  if (tail != kNil) {
    arena_[tail].next = kNil;
  }
  node->clean = List{head, tail};
  node->dirty = List{};
  dirty_count_ -= cleaned;
  node->dirty_count = 0;
  return cleaned;
}

uint64_t TwoLevelCache::CachedPredecessors(Lpn lpn) const {
  const Vtpn vtpn = lpn / entries_per_page_;
  const TpNode* node = FindNode(vtpn);
  if (node == nullptr) {
    return 0;
  }
  uint64_t slot = lpn % entries_per_page_;
  uint64_t count = 0;
  while (slot > 0 && node->slots[slot - 1] != kNil) {
    --slot;
    ++count;
  }
  return count;
}

uint64_t TwoLevelCache::DirtyCountOf(Vtpn vtpn) const {
  const TpNode* node = FindNode(vtpn);
  return node == nullptr ? 0 : node->dirty_count;
}

void TwoLevelCache::ForEachNode(
    const std::function<void(Vtpn, uint64_t, uint64_t)>& fn) const {
  for (const auto& [vtpn, node] : nodes_) {
    fn(vtpn, node.entry_count, node.dirty_count);
  }
}

}  // namespace tpftl
