// Analytical models of §3.1 (Equations 1–13).
//
// Two closed-form models quantify the overhead address translation adds in a
// demand-based page-level FTL:
//   * the performance model — average per-access time of translation (Eq. 1)
//     and of collecting data/translation blocks (Eq. 10 / Eq. 11);
//   * the write-amplification model (Eq. 13).
//
// ModelParams carries the Table 1 symbols; FromStats() extracts them from a
// simulation run so bench_models_validation can compare predicted against
// measured values.

#ifndef SRC_CORE_MODEL_H_
#define SRC_CORE_MODEL_H_

#include "src/flash/geometry.h"
#include "src/ftl/at_stats.h"

namespace tpftl {

struct ModelParams {
  double hr = 0.0;    // Hr   — mapping cache hit ratio.
  double prd = 0.0;   // Prd  — probability of replacing a dirty entry.
  double rw = 0.0;    // Rw   — write ratio among user page accesses.
  double hgcr = 0.0;  // Hgcr — GC-time mapping cache hit ratio.
  double vd = 0.0;    // Vd   — mean valid pages in collected data blocks.
  double vt = 0.0;    // Vt   — mean valid pages in collected translation blocks.
  double np = 64.0;   // Np   — pages per block.
  double tfr = 25.0;  // Tfr  — page read time (µs).
  double tfw = 200.0; // Tfw  — page write time (µs).
  double tfe = 1500.0;// Tfe  — block erase time (µs).

  // Populates every symbol from a finished run's statistics.
  static ModelParams FromStats(const AtStats& stats, const FlashGeometry& geometry);
};

// Eq. 1 — average time of one LPN→PPN translation.
double ModelTranslationTime(const ModelParams& p);

// Eq. 10 — average time spent collecting data blocks, per user page access.
double ModelGcDataTime(const ModelParams& p);

// Eq. 11 — average time spent collecting translation blocks, per user page
// access.
double ModelGcTranslationTime(const ModelParams& p);

// Eq. 13 — overall write amplification.
double ModelWriteAmplification(const ModelParams& p);

// Eq. 7 / Eq. 9 — expected GC operation counts for `npa` user page accesses.
double ModelGcDataCount(const ModelParams& p, double npa);
double ModelGcTranslationCount(const ModelParams& p, double npa);

// Eq. 8 — expected translation page writes during address translation.
double ModelTranslationWrites(const ModelParams& p, double npa);

}  // namespace tpftl

#endif  // SRC_CORE_MODEL_H_
