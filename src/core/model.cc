#include "src/core/model.h"

namespace tpftl {

ModelParams ModelParams::FromStats(const AtStats& stats, const FlashGeometry& geometry) {
  ModelParams p;
  p.hr = stats.hit_ratio();
  p.prd = stats.dirty_replacement_probability();
  const uint64_t npa = stats.user_page_accesses();
  p.rw = npa > 0 ? static_cast<double>(stats.host_page_writes) / static_cast<double>(npa) : 0.0;
  p.hgcr = stats.gc_hit_ratio();
  p.vd = stats.gc_data_blocks > 0 ? static_cast<double>(stats.gc_data_migrations) /
                                        static_cast<double>(stats.gc_data_blocks)
                                  : 0.0;
  p.vt = stats.gc_trans_blocks > 0 ? static_cast<double>(stats.gc_trans_migrations) /
                                         static_cast<double>(stats.gc_trans_blocks)
                                   : 0.0;
  p.np = static_cast<double>(geometry.pages_per_block);
  p.tfr = geometry.page_read_us;
  p.tfw = geometry.page_write_us;
  p.tfe = geometry.block_erase_us;
  return p;
}

double ModelTranslationTime(const ModelParams& p) {
  // Eq. 1: Tat = (1 - Hr) * [Tfr + Prd * (Tfr + Tfw)].
  return (1.0 - p.hr) * (p.tfr + p.prd * (p.tfr + p.tfw));
}

double ModelGcDataCount(const ModelParams& p, double npa) {
  // Eq. 7: Ngcd = Npa * Rw / (Np - Vd).
  if (p.np <= p.vd) {
    return 0.0;
  }
  return npa * p.rw / (p.np - p.vd);
}

double ModelTranslationWrites(const ModelParams& p, double npa) {
  // Eq. 8: Ntw = (1 - Hr) * Prd * Npa.
  return (1.0 - p.hr) * p.prd * npa;
}

double ModelGcTranslationCount(const ModelParams& p, double npa) {
  // Eq. 9: Ngct = (Ntw + Ndt) / (Np - Vt), with Ndt from Eq. 3.
  if (p.np <= p.vt) {
    return 0.0;
  }
  const double ngcd = ModelGcDataCount(p, npa);
  const double ndt = ngcd * p.vd * (1.0 - p.hgcr);
  return (ModelTranslationWrites(p, npa) + ndt) / (p.np - p.vt);
}

double ModelGcDataTime(const ModelParams& p) {
  // Eq. 10: Tgcd = Rw * [Vd * (2 - Hgcr) * (Tfr + Tfw) + Tfe] / (Np - Vd).
  if (p.np <= p.vd) {
    return 0.0;
  }
  return p.rw * (p.vd * (2.0 - p.hgcr) * (p.tfr + p.tfw) + p.tfe) / (p.np - p.vd);
}

double ModelGcTranslationTime(const ModelParams& p) {
  // Eq. 11: Tgct = [(1 - Hr) * Prd + Rw * Vd * (1 - Hgcr) / (Np - Vd)]
  //              * [Vt * (Tfr + Tfw) + Tfe] / (Np - Vt).
  if (p.np <= p.vt || p.np <= p.vd) {
    return 0.0;
  }
  const double rate = (1.0 - p.hr) * p.prd + p.rw * p.vd * (1.0 - p.hgcr) / (p.np - p.vd);
  return rate * (p.vt * (p.tfr + p.tfw) + p.tfe) / (p.np - p.vt);
}

double ModelWriteAmplification(const ModelParams& p) {
  // Eq. 13: A = 1 + (1 - Hr) * Prd * Np / ((Np - Vt) * Rw)
  //           + [1 + (1 - Hgcr) * Np / (Np - Vt)] * Vd / (Np - Vd).
  if (p.rw <= 0.0 || p.np <= p.vt || p.np <= p.vd) {
    return 1.0;
  }
  return 1.0 + (1.0 - p.hr) * p.prd * p.np / ((p.np - p.vt) * p.rw) +
         (1.0 + (1.0 - p.hgcr) * p.np / (p.np - p.vt)) * p.vd / (p.np - p.vd);
}

}  // namespace tpftl
