// Multi-tenant open-loop frontend: interleaves per-tenant generators.
//
// A TenantMixSource merges N independent tenant streams into one
// time-ordered TraceSource. Each tenant owns
//
//   * an op-shape generator — either a SyntheticWorkload (the existing
//     zipf/sequential machinery, giving YCSB-like mixes and streamers) or
//     the TRIM-heavy filesystem-aging generator defined here;
//   * an open-loop ArrivalProcess (workload/arrival.h) that stamps the
//     arrival clock, replacing the generator's own closed-form clock;
//   * an LBA window: `lba_offset_bytes` places the tenant's
//     `ops.address_space_bytes`-sized region on the shared device, so
//     tenants can be disjoint (the usual multi-tenant carve-up) or overlap.
//
// Every emitted IoRequest carries its tenant id (IoRequest::tenant), which
// the SSD layer uses for per-tenant QoS accounting when
// SsdConfig::tenant_count is set. The merge is deterministic: same specs +
// seeds ⇒ the identical interleaved stream, and Rewind() replays it.

#ifndef SRC_WORKLOAD_TENANT_MIX_H_
#define SRC_WORKLOAD_TENANT_MIX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/trace/trace_source.h"
#include "src/workload/arrival.h"
#include "src/workload/generator.h"

namespace tpftl {

struct TenantSpec {
  std::string name = "tenant";

  // Op-shape source. kSynthetic drives a SyntheticWorkload from `ops`;
  // kAging drives the TRIM-heavy filesystem-aging generator (whole-extent
  // file writes and deletes over ops.address_space_bytes, see AgingWorkload).
  enum class Ops : uint8_t { kSynthetic = 0, kAging = 1 };
  Ops ops_kind = Ops::kSynthetic;
  WorkloadConfig ops;

  ArrivalConfig arrival;

  // Placement of the tenant's region on the shared device address space.
  uint64_t lba_offset_bytes = 0;

  // Aging-generator knobs (ops_kind == kAging): extent ("file") size in
  // pages and the probability a request deletes a live extent instead of
  // writing the next one.
  uint64_t aging_extent_pages = 64;
  double aging_trim_fraction = 0.35;
};

// --- presets -------------------------------------------------------------

// YCSB-like keyed point-op mix over `space_bytes`: zipf(0.99) page-sized
// ops. mix 'A' = 50% updates, 'B' = 5% updates, 'C' = read-only.
TenantSpec YcsbTenant(char mix, uint64_t space_bytes, uint64_t requests,
                      uint64_t seed);

// Sequential streamer: large requests on long sequential streams
// (write_ratio 1.0 = pure ingest, 0.0 = backup-style scan).
TenantSpec StreamerTenant(uint64_t space_bytes, uint64_t requests,
                          uint64_t seed, double write_ratio = 1.0);

// TRIM-heavy filesystem aging: extent-granular file churn (see
// AgingWorkload below).
TenantSpec AgingTenant(uint64_t space_bytes, uint64_t requests,
                       uint64_t seed);

// --- TRIM-heavy filesystem-aging generator -------------------------------
//
// Models a filesystem aging a volume: files are `extent_pages`-sized
// contiguous extents. Each step either deletes a uniformly random *live*
// extent (probability `trim_fraction`, emitting a whole-extent TRIM) or
// writes the next extent in round-robin order (a whole-extent sequential
// write, re-creating the file if it was deleted). The invariants tests
// lean on: TRIMs only ever target live extents, and the live set is exactly
// determined by the emitted stream.
class AgingWorkload : public TraceSource {
 public:
  AgingWorkload(const WorkloadConfig& config, uint64_t extent_pages,
                double trim_fraction);

  bool Next(IoRequest* out) override;
  void Rewind() override;
  std::optional<uint64_t> SizeHint() const override {
    return config_.num_requests;
  }

  uint64_t extent_pages() const { return extent_pages_; }
  uint64_t extent_count() const { return extent_count_; }

 private:
  WorkloadConfig config_;
  uint64_t extent_pages_;
  double trim_fraction_;
  uint64_t extent_count_;
  Rng rng_;
  std::vector<uint32_t> live_;      // Live extent ids, unordered.
  std::vector<int32_t> live_slot_;  // extent id → index in live_, or −1.
  uint64_t cursor_ = 0;             // Next extent to (re)write.
  uint64_t emitted_ = 0;
};

// --- the merged multi-tenant stream --------------------------------------

class TenantMixSource : public TraceSource {
 public:
  explicit TenantMixSource(std::vector<TenantSpec> specs);

  bool Next(IoRequest* out) override;
  void Rewind() override;
  std::optional<uint64_t> SizeHint() const override;

  uint32_t tenant_count() const {
    return static_cast<uint32_t>(specs_.size());
  }
  const TenantSpec& spec(uint32_t tenant) const { return specs_[tenant]; }
  std::vector<std::string> TenantNames() const;

  // Smallest device address space covering every tenant's LBA window.
  uint64_t RequiredDeviceBytes() const;

 private:
  struct Slot {
    std::unique_ptr<TraceSource> ops;
    std::unique_ptr<ArrivalProcess> arrivals;
    IoRequest pending;
    bool has_pending = false;
  };

  void Refill(size_t i);

  std::vector<TenantSpec> specs_;
  std::vector<Slot> slots_;
};

}  // namespace tpftl

#endif  // SRC_WORKLOAD_TENANT_MIX_H_
