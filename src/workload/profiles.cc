#include "src/workload/profiles.h"

#include "src/util/str.h"

namespace tpftl {

WorkloadConfig Financial1Profile(uint64_t num_requests) {
  WorkloadConfig c;
  c.name = "Financial1";
  c.address_space_bytes = 512ULL << 20;
  c.num_requests = num_requests;
  c.seed = 1001;
  c.write_ratio = 0.779;
  c.seq_read_fraction = 0.015;
  c.seq_write_fraction = 0.018;
  c.mean_random_bytes = 3584;  // 3.5 KB
  c.mean_seq_bytes = 8192;
  // OLTP hot tables cluster: chunks span a whole translation page so cached
  // TP nodes carry many entries (Fig. 1(a)); strong temporal skew keeps the
  // GC-visible working set near the paper's regime (WA ≈ 2.4–5.1).
  c.zipf_theta = 1.60;
  c.chunk_pages = 128;
  c.mean_stream_pages = 64;
  c.mean_interarrival_us = 10000.0;
  return c;
}

WorkloadConfig Financial2Profile(uint64_t num_requests) {
  WorkloadConfig c;
  c.name = "Financial2";
  c.address_space_bytes = 512ULL << 20;
  c.num_requests = num_requests;
  c.seed = 1002;
  c.write_ratio = 0.18;
  c.seq_read_fraction = 0.008;
  c.seq_write_fraction = 0.005;
  c.mean_random_bytes = 2458;  // 2.4 KB
  c.mean_seq_bytes = 8192;
  c.zipf_theta = 1.55;
  c.chunk_pages = 128;
  c.mean_stream_pages = 64;
  c.mean_interarrival_us = 5000.0;
  return c;
}

WorkloadConfig MsrTsProfile(uint64_t num_requests) {
  WorkloadConfig c;
  c.name = "MSR-ts";
  c.address_space_bytes = 16ULL << 30;
  c.num_requests = num_requests;
  c.seed = 1003;
  c.write_ratio = 0.824;
  c.seq_read_fraction = 0.472;
  c.seq_write_fraction = 0.06;
  c.mean_random_bytes = 8192;
  c.mean_seq_bytes = 12288;  // Overall mean request ≈ 9 KB.
  c.zipf_theta = 1.50;       // Server traces: very concentrated working set.
  c.chunk_pages = 256;
  c.mean_stream_pages = 512;
  c.mean_interarrival_us = 4000.0;
  return c;
}

WorkloadConfig MsrSrcProfile(uint64_t num_requests) {
  WorkloadConfig c;
  c.name = "MSR-src";
  c.address_space_bytes = 16ULL << 30;
  c.num_requests = num_requests;
  c.seed = 1004;
  c.write_ratio = 0.887;
  c.seq_read_fraction = 0.226;
  c.seq_write_fraction = 0.071;
  c.mean_random_bytes = 6656;
  c.mean_seq_bytes = 10240;  // Overall mean request ≈ 7.2 KB.
  c.zipf_theta = 1.50;
  c.chunk_pages = 256;
  c.mean_stream_pages = 384;
  c.mean_interarrival_us = 4000.0;
  return c;
}

std::vector<WorkloadConfig> PaperWorkloads(uint64_t num_requests) {
  return {Financial1Profile(num_requests), Financial2Profile(num_requests),
          MsrTsProfile(num_requests), MsrSrcProfile(num_requests)};
}

std::optional<WorkloadConfig> ProfileByName(const std::string& name, uint64_t num_requests) {
  if (EqualsIgnoreCase(name, "financial1") || EqualsIgnoreCase(name, "fin1")) {
    return Financial1Profile(num_requests);
  }
  if (EqualsIgnoreCase(name, "financial2") || EqualsIgnoreCase(name, "fin2")) {
    return Financial2Profile(num_requests);
  }
  if (EqualsIgnoreCase(name, "msr-ts") || EqualsIgnoreCase(name, "ts")) {
    return MsrTsProfile(num_requests);
  }
  if (EqualsIgnoreCase(name, "msr-src") || EqualsIgnoreCase(name, "src")) {
    return MsrSrcProfile(num_requests);
  }
  return std::nullopt;
}

}  // namespace tpftl
