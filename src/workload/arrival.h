// Open-loop arrival processes.
//
// The closed-loop replay (RunClosedLoop) measures capacity: it keeps the
// queue saturated, so latency quantiles are dominated by backlog and say
// nothing about what a user of a *non*-saturated device experiences.
// Production traffic is open loop — requests arrive when they arrive,
// whether or not the device is keeping up — so sustained-traffic behavior
// (queue buildup, diurnal load, bursts) needs arrival processes that are
// independent of service times.
//
// Three seeded, rewindable processes cover the shapes that matter:
//
//   * kPoisson — homogeneous Poisson at `rate_rps`: exponential
//     inter-arrival gaps, CV = 1. The memoryless baseline.
//   * kDiurnal — nonhomogeneous Poisson whose rate follows a daily cosine:
//     rate(t) = rate_rps * (1 + a*cos(2π(t/day_us − peak_phase))) with
//     a = (r−1)/(r+1) so peak/trough = `peak_to_trough` and the *mean* rate
//     stays rate_rps (the curve integrates to rate_rps * day_us / 1e6
//     requests per simulated day). Sampled by thinning against the peak
//     rate, the textbook exact method for nonhomogeneous Poisson.
//   * kOnOff — Markov-modulated burst process: exponentially distributed
//     ON segments (mean `mean_on_us`) with Poisson arrivals at `rate_rps`,
//     alternating with OFF segments (mean `mean_off_us`) at `off_rate_rps`
//     (usually 0). Duty cycle = mean_on / (mean_on + mean_off).
//
// All randomness flows through util/Rng; same config + seed ⇒ identical
// arrival sequence, and Rewind() restarts it exactly.

#ifndef SRC_WORKLOAD_ARRIVAL_H_
#define SRC_WORKLOAD_ARRIVAL_H_

#include <cstdint>
#include <memory>

#include "src/flash/types.h"
#include "src/util/rng.h"

namespace tpftl {

enum class ArrivalKind : uint8_t { kPoisson = 0, kDiurnal = 1, kOnOff = 2 };

const char* ArrivalKindName(ArrivalKind kind);

struct ArrivalConfig {
  ArrivalKind kind = ArrivalKind::kPoisson;
  uint64_t seed = 1;
  // Mean arrival rate in requests per simulated second (Poisson/diurnal);
  // the ON-segment rate for kOnOff.
  double rate_rps = 1000.0;

  // kDiurnal: period of the rate curve and its shape. peak_to_trough is the
  // ratio of the peak rate to the trough rate (>= 1); peak_phase in [0,1)
  // places the peak within the day (0 = day start).
  double day_us = 86'400e6;
  double peak_to_trough = 4.0;
  double peak_phase = 0.0;

  // kOnOff: mean segment lengths and the (usually zero) OFF-segment rate.
  double mean_on_us = 100'000.0;
  double mean_off_us = 400'000.0;
  double off_rate_rps = 0.0;
};

// A stream of absolute, non-decreasing arrival timestamps starting at 0.
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;

  // Returns the next arrival time (µs since stream start).
  virtual MicroSec NextUs() = 0;

  // Restarts the stream; the same timestamps replay exactly.
  virtual void Rewind() = 0;
};

class PoissonArrivals : public ArrivalProcess {
 public:
  explicit PoissonArrivals(const ArrivalConfig& config);

  MicroSec NextUs() override;
  void Rewind() override;

 private:
  ArrivalConfig config_;
  Rng rng_;
  double clock_us_ = 0.0;
};

class DiurnalArrivals : public ArrivalProcess {
 public:
  explicit DiurnalArrivals(const ArrivalConfig& config);

  MicroSec NextUs() override;
  void Rewind() override;

  // Instantaneous rate (requests per second) at absolute time t.
  double RateAt(MicroSec t_us) const;
  // Requests one simulated day integrates to: rate_rps * day_us / 1e6.
  double DailyRequestCount() const;

 private:
  ArrivalConfig config_;
  double amplitude_;  // (r−1)/(r+1) for peak/trough ratio r.
  double peak_rate_rps_;
  Rng rng_;
  double clock_us_ = 0.0;
};

class OnOffArrivals : public ArrivalProcess {
 public:
  explicit OnOffArrivals(const ArrivalConfig& config);

  MicroSec NextUs() override;
  void Rewind() override;

  // Simulated time spent in *completed* ON / OFF segments. Exposed so tests
  // can check the realized duty cycle against mean_on / (mean_on + mean_off);
  // the still-open segment is excluded, which is negligible over many
  // segments.
  double on_time_us() const;
  double off_time_us() const;

 private:
  void StartSegment(bool on);

  ArrivalConfig config_;
  Rng rng_;
  double clock_us_ = 0.0;
  double segment_start_us_ = 0.0;
  double segment_end_us_ = 0.0;
  bool on_ = true;
  double on_accum_us_ = 0.0;   // Completed ON segments.
  double off_accum_us_ = 0.0;  // Completed OFF segments.
};

std::unique_ptr<ArrivalProcess> MakeArrivalProcess(const ArrivalConfig& config);

}  // namespace tpftl

#endif  // SRC_WORKLOAD_ARRIVAL_H_
