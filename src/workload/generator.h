// Synthetic enterprise-workload generator.
//
// The paper evaluates on four traces (Table 4) that are not redistributable
// with this repository, so experiments run on synthetic streams that
// reproduce the features the paper's conclusions depend on:
//
//   * read/write mix            — `write_ratio`;
//   * request size distribution — geometric over 512 B sectors around
//     `mean_random_bytes` / `mean_seq_bytes`;
//   * temporal locality         — Zipf(theta) over coarse-grained chunks, so
//     a small hot set absorbs most accesses;
//   * spatial locality          — (a) hot chunks are contiguous page ranges
//     (OLTP tables / log segments), and (b) a tunable fraction of requests
//     continues sequential streams interspersed with the random traffic,
//     reproducing the diagonal access patterns of Fig. 2(a);
//   * arrival process           — exponential inter-arrival times.
//
// The generator is a TraceSource: deterministic for a given seed, rewindable,
// and streamable (no trace needs to be materialized unless asked).

#ifndef SRC_WORKLOAD_GENERATOR_H_
#define SRC_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/trace/trace_source.h"
#include "src/trace/vector_trace.h"
#include "src/util/rng.h"
#include "src/util/zipf.h"

namespace tpftl {

struct WorkloadConfig {
  std::string name = "synthetic";
  uint64_t address_space_bytes = 512ULL << 20;
  uint64_t num_requests = 1'000'000;
  uint64_t seed = 42;

  // Mix.
  double write_ratio = 0.5;
  double seq_read_fraction = 0.0;   // Of read requests, fraction on sequential streams.
  double seq_write_fraction = 0.0;  // Of write requests.

  // Sizes (bytes; sector-granular sampling).
  uint64_t mean_random_bytes = 4096;
  uint64_t mean_seq_bytes = 16384;
  uint64_t max_request_bytes = 256 * 1024;

  // Locality.
  double zipf_theta = 1.0;        // Skew across hot chunks (0 = uniform).
  uint64_t chunk_pages = 64;      // Contiguity granularity of the hot set.
  uint64_t mean_stream_pages = 128;  // Mean sequential-stream length.

  // Arrival process.
  double mean_interarrival_us = 1000.0;

  uint64_t page_size = 4096;
  uint64_t sector_bytes = 512;

  uint64_t total_pages() const { return address_space_bytes / page_size; }
};

class SyntheticWorkload : public TraceSource {
 public:
  explicit SyntheticWorkload(const WorkloadConfig& config);

  bool Next(IoRequest* out) override;
  void Rewind() override;

  std::optional<uint64_t> SizeHint() const override { return config_.num_requests; }

  const WorkloadConfig& config() const { return config_; }

 private:
  struct Stream {
    uint64_t cursor_bytes = 0;
    uint64_t remaining_bytes = 0;
  };

  uint64_t SampleSizeBytes(uint64_t mean_bytes);
  uint64_t SampleRandomOffset();
  IoRequest NextFromStream(Stream* stream, IoKind kind);

  WorkloadConfig config_;
  ZipfGenerator chunk_zipf_;
  std::vector<uint32_t> chunk_permutation_;  // Hot-rank → chunk placement.
  Rng rng_;
  Stream read_stream_;
  Stream write_stream_;
  uint64_t emitted_ = 0;
  double clock_us_ = 0.0;
};

// Materializes the full stream (convenience for tests and small runs).
VectorTrace MaterializeWorkload(const WorkloadConfig& config);

// Measured aggregate features of a request stream; used by tests to verify
// the generator hits its configuration targets.
struct WorkloadFeatures {
  uint64_t requests = 0;
  double write_ratio = 0.0;
  double mean_request_bytes = 0.0;
  double seq_read_fraction = 0.0;   // Requests starting exactly where an earlier one ended.
  double seq_write_fraction = 0.0;
  uint64_t distinct_pages = 0;
};
WorkloadFeatures AnalyzeTrace(const std::vector<IoRequest>& requests, uint64_t page_size = 4096);

}  // namespace tpftl

#endif  // SRC_WORKLOAD_GENERATOR_H_
