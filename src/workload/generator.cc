#include "src/workload/generator.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "src/util/assert.h"

namespace tpftl {
namespace {

uint64_t NumChunks(const WorkloadConfig& c) {
  const uint64_t pages = c.total_pages();
  TPFTL_CHECK(pages >= c.chunk_pages);
  return pages / c.chunk_pages;
}

}  // namespace

SyntheticWorkload::SyntheticWorkload(const WorkloadConfig& config)
    : config_(config), chunk_zipf_(NumChunks(config), config.zipf_theta), rng_(config.seed) {
  TPFTL_CHECK(config.address_space_bytes % config.page_size == 0);
  TPFTL_CHECK(config.write_ratio >= 0.0 && config.write_ratio <= 1.0);
  // Scatter hot ranks over the address space with a seeded Fisher-Yates
  // shuffle: hot chunks stay internally contiguous (spatial locality) but are
  // not all packed at address zero.
  const uint64_t chunks = NumChunks(config);
  chunk_permutation_.resize(chunks);
  for (uint64_t i = 0; i < chunks; ++i) {
    chunk_permutation_[i] = static_cast<uint32_t>(i);
  }
  Rng shuffle_rng(config.seed ^ 0xC0FFEE0ULL);
  for (uint64_t i = chunks - 1; i > 0; --i) {
    std::swap(chunk_permutation_[i], chunk_permutation_[shuffle_rng.Below(i + 1)]);
  }
  Rewind();
}

void SyntheticWorkload::Rewind() {
  rng_.Seed(config_.seed);
  read_stream_ = Stream{};
  write_stream_ = Stream{};
  emitted_ = 0;
  clock_us_ = 0.0;
}

uint64_t SyntheticWorkload::SampleSizeBytes(uint64_t mean_bytes) {
  // Geometric over sectors, shifted to start at one sector.
  const double mean_sectors =
      std::max(1.0, static_cast<double>(mean_bytes) / static_cast<double>(config_.sector_bytes));
  const double p = 1.0 / mean_sectors;
  const double u = rng_.NextDouble();
  const auto extra = static_cast<uint64_t>(std::floor(std::log1p(-u) / std::log1p(-p)));
  uint64_t bytes = (1 + extra) * config_.sector_bytes;
  bytes = std::min(bytes, config_.max_request_bytes);
  return bytes;
}

uint64_t SyntheticWorkload::SampleRandomOffset() {
  const uint64_t rank = chunk_zipf_.Sample(rng_);
  const uint64_t chunk = chunk_permutation_[rank];
  const uint64_t page_in_chunk = rng_.Below(config_.chunk_pages);
  const uint64_t page = chunk * config_.chunk_pages + page_in_chunk;
  // Sector-granular jitter inside the page (real traces are rarely aligned).
  const uint64_t sectors_per_page = config_.page_size / config_.sector_bytes;
  return page * config_.page_size + rng_.Below(sectors_per_page) * config_.sector_bytes;
}

IoRequest SyntheticWorkload::NextFromStream(Stream* stream, IoKind kind) {
  if (stream->remaining_bytes == 0) {
    // Start a new stream at a hot-set location so sequential bursts interact
    // with the cached working set (cf. Fig. 2(b)).
    stream->cursor_bytes = SampleRandomOffset() & ~(config_.page_size - 1);
    const double mean_bytes =
        static_cast<double>(config_.mean_stream_pages * config_.page_size);
    const double u = rng_.NextDouble();
    stream->remaining_bytes = std::max<uint64_t>(
        config_.page_size,
        static_cast<uint64_t>(-mean_bytes * std::log1p(-u)) & ~(config_.page_size - 1));
  }
  IoRequest req;
  req.kind = kind;
  req.offset_bytes = stream->cursor_bytes;
  req.size_bytes = std::min(SampleSizeBytes(config_.mean_seq_bytes), stream->remaining_bytes);
  stream->cursor_bytes += req.size_bytes;
  stream->remaining_bytes -= std::min(req.size_bytes, stream->remaining_bytes);
  if (stream->cursor_bytes >= config_.address_space_bytes) {
    stream->cursor_bytes = 0;
    stream->remaining_bytes = 0;
  }
  return req;
}

bool SyntheticWorkload::Next(IoRequest* out) {
  if (emitted_ >= config_.num_requests) {
    return false;
  }
  const IoKind kind = rng_.Chance(config_.write_ratio) ? IoKind::kWrite : IoKind::kRead;
  const double seq_fraction =
      kind == IoKind::kWrite ? config_.seq_write_fraction : config_.seq_read_fraction;

  IoRequest req;
  if (rng_.Chance(seq_fraction)) {
    Stream* stream = kind == IoKind::kWrite ? &write_stream_ : &read_stream_;
    req = NextFromStream(stream, kind);
  } else {
    req.kind = kind;
    req.offset_bytes = SampleRandomOffset();
    req.size_bytes = SampleSizeBytes(config_.mean_random_bytes);
  }
  // Clamp to the address space.
  if (req.offset_bytes >= config_.address_space_bytes) {
    req.offset_bytes = config_.address_space_bytes - config_.page_size;
  }
  req.size_bytes =
      std::min<uint64_t>(req.size_bytes, config_.address_space_bytes - req.offset_bytes);

  clock_us_ += -config_.mean_interarrival_us * std::log1p(-rng_.NextDouble());
  req.arrival_us = clock_us_;

  ++emitted_;
  *out = req;
  return true;
}

VectorTrace MaterializeWorkload(const WorkloadConfig& config) {
  SyntheticWorkload source(config);
  std::vector<IoRequest> requests;
  requests.reserve(config.num_requests);
  IoRequest req;
  while (source.Next(&req)) {
    requests.push_back(req);
  }
  return VectorTrace(std::move(requests));
}

WorkloadFeatures AnalyzeTrace(const std::vector<IoRequest>& requests, uint64_t page_size) {
  WorkloadFeatures f;
  f.requests = requests.size();
  if (requests.empty()) {
    return f;
  }
  uint64_t writes = 0;
  uint64_t seq_reads = 0;
  uint64_t reads = 0;
  uint64_t seq_writes = 0;
  double total_bytes = 0.0;
  std::unordered_set<uint64_t> recent_ends;  // Request end offsets (rolling window).
  std::vector<uint64_t> window;
  constexpr size_t kWindow = 64;
  std::unordered_set<Lpn> pages;
  for (const IoRequest& req : requests) {
    total_bytes += static_cast<double>(req.size_bytes);
    const bool sequential = recent_ends.contains(req.offset_bytes);
    if (req.is_write()) {
      ++writes;
      seq_writes += sequential ? 1 : 0;
    } else {
      ++reads;
      seq_reads += sequential ? 1 : 0;
    }
    const uint64_t end = req.offset_bytes + req.size_bytes;
    recent_ends.insert(end);
    window.push_back(end);
    if (window.size() > kWindow) {
      recent_ends.erase(window.front());
      window.erase(window.begin());
    }
    for (Lpn lpn = req.FirstLpn(page_size); lpn <= req.LastLpn(page_size); ++lpn) {
      pages.insert(lpn);
    }
  }
  f.write_ratio = static_cast<double>(writes) / static_cast<double>(requests.size());
  f.mean_request_bytes = total_bytes / static_cast<double>(requests.size());
  f.seq_read_fraction = reads > 0 ? static_cast<double>(seq_reads) / static_cast<double>(reads) : 0;
  f.seq_write_fraction =
      writes > 0 ? static_cast<double>(seq_writes) / static_cast<double>(writes) : 0;
  f.distinct_pages = pages.size();
  return f;
}

}  // namespace tpftl
