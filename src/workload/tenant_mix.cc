#include "src/workload/tenant_mix.h"

#include <algorithm>
#include <cctype>

#include "src/util/assert.h"

namespace tpftl {

TenantSpec YcsbTenant(char mix, uint64_t space_bytes, uint64_t requests,
                      uint64_t seed) {
  TenantSpec spec;
  spec.name = std::string("ycsb-") + static_cast<char>(std::tolower(mix));
  spec.ops.name = spec.name;
  spec.ops.address_space_bytes = space_bytes;
  spec.ops.num_requests = requests;
  spec.ops.seed = seed;
  switch (std::tolower(mix)) {
    case 'a':
      spec.ops.write_ratio = 0.5;
      break;
    case 'b':
      spec.ops.write_ratio = 0.05;
      break;
    case 'c':
      spec.ops.write_ratio = 0.0;
      break;
    default:
      TPFTL_CHECK_MSG(false, "YcsbTenant mix must be 'A', 'B', or 'C'");
  }
  // Point operations on zipf-popular keys: page-sized requests, standard
  // YCSB skew, small hot chunks so the hot set is key-shaped rather than
  // table-shaped.
  spec.ops.zipf_theta = 0.99;
  spec.ops.chunk_pages = 4;
  spec.ops.mean_random_bytes = 4096;
  spec.ops.max_request_bytes = 16 * 1024;
  spec.ops.seq_read_fraction = 0.0;
  spec.ops.seq_write_fraction = 0.0;
  return spec;
}

TenantSpec StreamerTenant(uint64_t space_bytes, uint64_t requests,
                          uint64_t seed, double write_ratio) {
  TenantSpec spec;
  spec.name = "streamer";
  spec.ops.name = spec.name;
  spec.ops.address_space_bytes = space_bytes;
  spec.ops.num_requests = requests;
  spec.ops.seed = seed;
  spec.ops.write_ratio = write_ratio;
  spec.ops.seq_read_fraction = 1.0;
  spec.ops.seq_write_fraction = 1.0;
  spec.ops.mean_seq_bytes = 128 * 1024;
  spec.ops.max_request_bytes = 512 * 1024;
  spec.ops.mean_stream_pages = 2048;
  return spec;
}

TenantSpec AgingTenant(uint64_t space_bytes, uint64_t requests,
                       uint64_t seed) {
  TenantSpec spec;
  spec.name = "fs-aging";
  spec.ops_kind = TenantSpec::Ops::kAging;
  spec.ops.name = spec.name;
  spec.ops.address_space_bytes = space_bytes;
  spec.ops.num_requests = requests;
  spec.ops.seed = seed;
  spec.aging_extent_pages = 64;
  spec.aging_trim_fraction = 0.35;
  return spec;
}

AgingWorkload::AgingWorkload(const WorkloadConfig& config,
                             uint64_t extent_pages, double trim_fraction)
    : config_(config),
      extent_pages_(extent_pages),
      trim_fraction_(trim_fraction),
      extent_count_(config.total_pages() / extent_pages),
      rng_(config.seed),
      live_slot_(extent_count_, -1) {
  TPFTL_CHECK_MSG(extent_pages_ > 0, "aging extents need pages");
  TPFTL_CHECK_MSG(extent_count_ >= 2,
                  "aging space must hold at least two extents");
  TPFTL_CHECK_MSG(trim_fraction_ >= 0.0 && trim_fraction_ < 1.0,
                  "aging trim fraction must be in [0, 1)");
  live_.reserve(extent_count_);
}

bool AgingWorkload::Next(IoRequest* out) {
  if (emitted_ >= config_.num_requests) {
    return false;
  }
  const uint64_t extent_bytes = extent_pages_ * config_.page_size;
  uint64_t extent;
  if (!live_.empty() && rng_.Chance(trim_fraction_)) {
    // Delete a uniformly random live file (whole-extent TRIM).
    const uint64_t pick = rng_.Below(live_.size());
    extent = live_[pick];
    live_[pick] = live_.back();
    live_slot_[live_[pick]] = static_cast<int32_t>(pick);
    live_.pop_back();
    live_slot_[extent] = -1;
    out->kind = IoKind::kTrim;
  } else {
    // (Re)write the next file in round-robin order.
    extent = cursor_;
    cursor_ = (cursor_ + 1) % extent_count_;
    if (live_slot_[extent] < 0) {
      live_slot_[extent] = static_cast<int32_t>(live_.size());
      live_.push_back(static_cast<uint32_t>(extent));
    }
    out->kind = IoKind::kWrite;
  }
  out->offset_bytes = extent * extent_bytes;
  out->size_bytes = extent_bytes;
  out->arrival_us = 0.0;  // The tenant mix stamps the arrival clock.
  out->tenant = 0;
  ++emitted_;
  return true;
}

void AgingWorkload::Rewind() {
  rng_.Seed(config_.seed);
  live_.clear();
  std::fill(live_slot_.begin(), live_slot_.end(), -1);
  cursor_ = 0;
  emitted_ = 0;
}

TenantMixSource::TenantMixSource(std::vector<TenantSpec> specs)
    : specs_(std::move(specs)) {
  TPFTL_CHECK_MSG(!specs_.empty(), "tenant mix needs at least one tenant");
  TPFTL_CHECK_MSG(specs_.size() <= UINT16_MAX, "too many tenants");
  slots_.resize(specs_.size());
  for (size_t i = 0; i < specs_.size(); ++i) {
    const TenantSpec& spec = specs_[i];
    if (spec.ops_kind == TenantSpec::Ops::kAging) {
      slots_[i].ops = std::make_unique<AgingWorkload>(
          spec.ops, spec.aging_extent_pages, spec.aging_trim_fraction);
    } else {
      slots_[i].ops = std::make_unique<SyntheticWorkload>(spec.ops);
    }
    slots_[i].arrivals = MakeArrivalProcess(spec.arrival);
    Refill(i);
  }
}

void TenantMixSource::Refill(size_t i) {
  Slot& slot = slots_[i];
  slot.has_pending = slot.ops->Next(&slot.pending);
  if (slot.has_pending) {
    slot.pending.arrival_us = slot.arrivals->NextUs();
    slot.pending.offset_bytes += specs_[i].lba_offset_bytes;
    slot.pending.tenant = static_cast<uint16_t>(i);
  }
}

bool TenantMixSource::Next(IoRequest* out) {
  // Earliest pending arrival wins; ties break to the lowest tenant id so
  // the interleaving is fully deterministic.
  size_t best = slots_.size();
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].has_pending &&
        (best == slots_.size() ||
         slots_[i].pending.arrival_us < slots_[best].pending.arrival_us)) {
      best = i;
    }
  }
  if (best == slots_.size()) {
    return false;
  }
  *out = slots_[best].pending;
  Refill(best);
  return true;
}

void TenantMixSource::Rewind() {
  for (size_t i = 0; i < slots_.size(); ++i) {
    slots_[i].ops->Rewind();
    slots_[i].arrivals->Rewind();
    Refill(i);
  }
}

std::optional<uint64_t> TenantMixSource::SizeHint() const {
  uint64_t total = 0;
  for (const Slot& slot : slots_) {
    const std::optional<uint64_t> hint = slot.ops->SizeHint();
    if (!hint.has_value()) {
      return std::nullopt;
    }
    total += *hint;
  }
  return total;
}

std::vector<std::string> TenantMixSource::TenantNames() const {
  std::vector<std::string> names;
  names.reserve(specs_.size());
  for (const TenantSpec& spec : specs_) {
    names.push_back(spec.name);
  }
  return names;
}

uint64_t TenantMixSource::RequiredDeviceBytes() const {
  uint64_t bytes = 0;
  for (const TenantSpec& spec : specs_) {
    bytes = std::max(bytes,
                     spec.lba_offset_bytes + spec.ops.address_space_bytes);
  }
  return bytes;
}

}  // namespace tpftl
