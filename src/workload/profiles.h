// Workload presets reproducing Table 4 of the paper.
//
// |-------------|-----------|-----------|--------|---------|
// | Parameter   | Financial1| Financial2| MSR-ts | MSR-src |
// |-------------|-----------|-----------|--------|---------|
// | Write ratio | 77.9 %    | 18 %      | 82.4 % | 88.7 %  |
// | Avg request | 3.5 KB    | 2.4 KB    | 9 KB   | 7.2 KB  |
// | Seq. read   | 1.5 %     | 0.8 %     | 47.2 % | 22.6 %  |
// | Seq. write  | 1.8 %     | 0.5 %     | 6 %    | 7.1 %   |
// | Addr space  | 512 MB    | 512 MB    | 16 GB  | 16 GB   |
// |-------------|-----------|-----------|--------|---------|
//
// Financial* are random-dominant OLTP workloads with strong temporal
// locality; MSR-* have larger requests and stronger sequentiality. The Zipf
// exponents and chunk sizes below are calibration knobs chosen so that the
// simulated cache behaviour (hit ratios, entries per cached translation page,
// GC efficiency) lands in the regimes the paper reports; they are asserted by
// tests/workload/profiles_test.cc.

#ifndef SRC_WORKLOAD_PROFILES_H_
#define SRC_WORKLOAD_PROFILES_H_

#include <optional>
#include <string>
#include <vector>

#include "src/workload/generator.h"

namespace tpftl {

WorkloadConfig Financial1Profile(uint64_t num_requests = 1'000'000);
WorkloadConfig Financial2Profile(uint64_t num_requests = 1'000'000);
WorkloadConfig MsrTsProfile(uint64_t num_requests = 1'000'000);
WorkloadConfig MsrSrcProfile(uint64_t num_requests = 1'000'000);

// The four paper workloads in presentation order.
std::vector<WorkloadConfig> PaperWorkloads(uint64_t num_requests = 1'000'000);

// Lookup by case-insensitive name ("financial1", "msr-ts", ...).
std::optional<WorkloadConfig> ProfileByName(const std::string& name,
                                            uint64_t num_requests = 1'000'000);

}  // namespace tpftl

#endif  // SRC_WORKLOAD_PROFILES_H_
