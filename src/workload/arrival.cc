#include "src/workload/arrival.h"

#include <cmath>

#include "src/util/assert.h"

namespace tpftl {
namespace {

constexpr double kPi = 3.14159265358979323846;

// Exponential variate with the given mean. log1p(-u) with u in [0,1) never
// hits log(0), so the gap is always finite.
double Exponential(Rng& rng, double mean) {
  return -mean * std::log1p(-rng.NextDouble());
}

}  // namespace

const char* ArrivalKindName(ArrivalKind kind) {
  switch (kind) {
    case ArrivalKind::kPoisson:
      return "poisson";
    case ArrivalKind::kDiurnal:
      return "diurnal";
    case ArrivalKind::kOnOff:
      return "onoff";
  }
  return "?";
}

PoissonArrivals::PoissonArrivals(const ArrivalConfig& config)
    : config_(config), rng_(config.seed) {
  TPFTL_CHECK_MSG(config.rate_rps > 0.0, "Poisson arrivals need rate_rps > 0");
}

MicroSec PoissonArrivals::NextUs() {
  clock_us_ += Exponential(rng_, 1e6 / config_.rate_rps);
  return clock_us_;
}

void PoissonArrivals::Rewind() {
  rng_.Seed(config_.seed);
  clock_us_ = 0.0;
}

DiurnalArrivals::DiurnalArrivals(const ArrivalConfig& config)
    : config_(config), rng_(config.seed) {
  TPFTL_CHECK_MSG(config.rate_rps > 0.0, "diurnal arrivals need rate_rps > 0");
  TPFTL_CHECK_MSG(config.day_us > 0.0, "diurnal arrivals need day_us > 0");
  TPFTL_CHECK_MSG(config.peak_to_trough >= 1.0,
                  "peak_to_trough must be >= 1");
  amplitude_ = (config.peak_to_trough - 1.0) / (config.peak_to_trough + 1.0);
  peak_rate_rps_ = config.rate_rps * (1.0 + amplitude_);
}

double DiurnalArrivals::RateAt(MicroSec t_us) const {
  const double phase = t_us / config_.day_us - config_.peak_phase;
  return config_.rate_rps * (1.0 + amplitude_ * std::cos(2.0 * kPi * phase));
}

double DiurnalArrivals::DailyRequestCount() const {
  return config_.rate_rps * config_.day_us / 1e6;
}

MicroSec DiurnalArrivals::NextUs() {
  // Thinning (Lewis & Shedler): draw candidates from a homogeneous Poisson
  // at the peak rate and accept each with probability rate(t)/peak — exact
  // for any bounded rate curve.
  const double mean_gap_us = 1e6 / peak_rate_rps_;
  for (;;) {
    clock_us_ += Exponential(rng_, mean_gap_us);
    if (rng_.NextDouble() * peak_rate_rps_ <= RateAt(clock_us_)) {
      return clock_us_;
    }
  }
}

void DiurnalArrivals::Rewind() {
  rng_.Seed(config_.seed);
  clock_us_ = 0.0;
}

OnOffArrivals::OnOffArrivals(const ArrivalConfig& config)
    : config_(config), rng_(config.seed) {
  TPFTL_CHECK_MSG(config.rate_rps > 0.0, "on/off arrivals need rate_rps > 0");
  TPFTL_CHECK_MSG(config.mean_on_us > 0.0 && config.mean_off_us > 0.0,
                  "on/off arrivals need positive segment means");
  TPFTL_CHECK_MSG(config.off_rate_rps >= 0.0, "off_rate_rps must be >= 0");
  StartSegment(/*on=*/true);
}

void OnOffArrivals::StartSegment(bool on) {
  on_ = on;
  segment_start_us_ = clock_us_;
  const double mean = on ? config_.mean_on_us : config_.mean_off_us;
  segment_end_us_ = clock_us_ + Exponential(rng_, mean);
}

MicroSec OnOffArrivals::NextUs() {
  for (;;) {
    const double rate = on_ ? config_.rate_rps : config_.off_rate_rps;
    if (rate > 0.0) {
      // Exponential gaps are memoryless, so re-drawing the gap at each
      // segment boundary leaves the within-segment process exactly Poisson.
      const double gap = Exponential(rng_, 1e6 / rate);
      if (clock_us_ + gap <= segment_end_us_) {
        clock_us_ += gap;
        return clock_us_;
      }
    }
    // No arrival before the segment ends: book the segment and flip state.
    (on_ ? on_accum_us_ : off_accum_us_) += segment_end_us_ - segment_start_us_;
    clock_us_ = segment_end_us_;
    StartSegment(!on_);
  }
}

void OnOffArrivals::Rewind() {
  rng_.Seed(config_.seed);
  clock_us_ = 0.0;
  on_accum_us_ = 0.0;
  off_accum_us_ = 0.0;
  StartSegment(/*on=*/true);
}

double OnOffArrivals::on_time_us() const { return on_accum_us_; }

double OnOffArrivals::off_time_us() const { return off_accum_us_; }

std::unique_ptr<ArrivalProcess> MakeArrivalProcess(const ArrivalConfig& config) {
  switch (config.kind) {
    case ArrivalKind::kPoisson:
      return std::make_unique<PoissonArrivals>(config);
    case ArrivalKind::kDiurnal:
      return std::make_unique<DiurnalArrivals>(config);
    case ArrivalKind::kOnOff:
      return std::make_unique<OnOffArrivals>(config);
  }
  TPFTL_CHECK_MSG(false, "unknown ArrivalKind");
  return nullptr;
}

}  // namespace tpftl
