#include "src/trace/spc_parser.h"

#include "src/util/str.h"

namespace tpftl {

std::optional<IoRequest> SpcParser::ParseLine(std::string_view line) const {
  line = Trim(line);
  if (line.empty() || line[0] == '#') {
    return std::nullopt;
  }
  const std::vector<std::string_view> fields = Split(line, ',');
  if (fields.size() < 5) {
    return std::nullopt;
  }
  const auto asu = ParseU64(fields[0]);
  const auto lba = ParseU64(fields[1]);
  const auto size = ParseU64(fields[2]);
  const std::string_view opcode = Trim(fields[3]);
  const auto timestamp = ParseDouble(fields[4]);
  if (!asu || !lba || !size || !timestamp || opcode.empty()) {
    return std::nullopt;
  }
  if (options_.asu_filter >= 0 && *asu != static_cast<uint64_t>(options_.asu_filter)) {
    return std::nullopt;
  }

  IoRequest req;
  if (opcode[0] == 'W' || opcode[0] == 'w') {
    req.kind = IoKind::kWrite;
  } else if (opcode[0] == 'R' || opcode[0] == 'r') {
    req.kind = IoKind::kRead;
  } else {
    return std::nullopt;
  }
  req.offset_bytes = *lba * options_.sector_bytes + *asu * options_.asu_stride_bytes;
  req.size_bytes = *size == 0 ? options_.sector_bytes : *size;
  req.arrival_us = *timestamp * 1e6;  // Seconds → microseconds.
  return req;
}

std::vector<IoRequest> SpcParser::ParseText(std::string_view text, uint64_t* malformed) const {
  std::vector<IoRequest> out;
  uint64_t bad = 0;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string_view::npos) {
      end = text.size();
    }
    const std::string_view line = text.substr(start, end - start);
    if (!Trim(line).empty()) {
      if (auto req = ParseLine(line)) {
        out.push_back(*req);
      } else {
        ++bad;
      }
    }
    if (end == text.size()) {
      break;
    }
    start = end + 1;
  }
  if (malformed != nullptr) {
    *malformed = bad;
  }
  return out;
}

}  // namespace tpftl
