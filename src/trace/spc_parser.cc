#include "src/trace/spc_parser.h"

#include <algorithm>

#include "src/util/str.h"

namespace tpftl {

std::optional<IoRequest> SpcParser::ParseLine(std::string_view line) const {
  line = Trim(line);
  if (line.empty() || line[0] == '#') {
    return std::nullopt;
  }
  // Walk the five leading fields in place (extra fields are ignored); no
  // per-line vector, no field copies.
  FieldCursor cursor(line, ',');
  std::string_view asu_field;
  std::string_view lba_field;
  std::string_view size_field;
  std::string_view opcode_field;
  std::string_view timestamp_field;
  if (!cursor.Next(&asu_field) || !cursor.Next(&lba_field) || !cursor.Next(&size_field) ||
      !cursor.Next(&opcode_field) || !cursor.Next(&timestamp_field)) {
    return std::nullopt;
  }
  const auto asu = ParseU64(asu_field);
  const auto lba = ParseU64(lba_field);
  const auto size = ParseU64(size_field);
  const std::string_view opcode = Trim(opcode_field);
  const auto timestamp = ParseDouble(timestamp_field);
  if (!asu || !lba || !size || !timestamp || opcode.empty()) {
    return std::nullopt;
  }
  if (options_.asu_filter >= 0 && *asu != static_cast<uint64_t>(options_.asu_filter)) {
    return std::nullopt;
  }

  IoRequest req;
  if (opcode[0] == 'W' || opcode[0] == 'w') {
    req.kind = IoKind::kWrite;
  } else if (opcode[0] == 'R' || opcode[0] == 'r') {
    req.kind = IoKind::kRead;
  } else {
    return std::nullopt;
  }
  req.offset_bytes = *lba * options_.sector_bytes + *asu * options_.asu_stride_bytes;
  req.size_bytes = *size == 0 ? options_.sector_bytes : *size;
  req.arrival_us = *timestamp * 1e6;  // Seconds → microseconds.
  return req;
}

std::vector<IoRequest> SpcParser::ParseText(std::string_view text, uint64_t* malformed) const {
  std::vector<IoRequest> out;
  // One record per line; reserving by newline count trades one cheap scan
  // for growth reallocations of a multi-million-entry vector.
  out.reserve(static_cast<size_t>(std::count(text.begin(), text.end(), '\n')) + 1);
  uint64_t bad = 0;
  LineCursor lines(text);
  std::string_view line;
  while (lines.Next(&line)) {
    if (Trim(line).empty()) {
      continue;
    }
    if (auto req = ParseLine(line)) {
      out.push_back(*req);
    } else {
      ++bad;
    }
  }
  if (malformed != nullptr) {
    *malformed = bad;
  }
  return out;
}

}  // namespace tpftl
