#include "src/trace/trace_io.h"

#include <cstdio>
#include <fstream>

#include "src/trace/msr_parser.h"
#include "src/trace/spc_parser.h"
#include "src/util/str.h"

namespace tpftl {
namespace {

// Classifies one record in isolation; kUnknown when the line fits neither
// format (headers, truncated tails, garbage).
TraceFormat ClassifyLine(std::string_view line) {
  const std::vector<std::string_view> fields = Split(line, ',');
  if (fields.size() >= 6) {
    const std::string_view type = Trim(fields[3]);
    if (EqualsIgnoreCase(type, "Read") || EqualsIgnoreCase(type, "Write")) {
      return TraceFormat::kMsr;
    }
  }
  if (fields.size() >= 5) {
    const std::string_view op = Trim(fields[3]);
    if (op.size() == 1 && (op[0] == 'R' || op[0] == 'r' || op[0] == 'W' || op[0] == 'w')) {
      return TraceFormat::kSpc;
    }
  }
  return TraceFormat::kUnknown;
}

}  // namespace

TraceFormat DetectFormat(std::string_view text) {
  // Real traces start with header rows, units lines, or a truncated export
  // artifact often enough that judging only the first data-looking line
  // mis-detects; classify up to the first few candidates and let the first
  // conclusive one decide.
  constexpr int kMaxCandidates = 8;
  int candidates = 0;
  LineCursor lines(text);
  std::string_view line;
  while (candidates < kMaxCandidates && lines.Next(&line)) {
    line = Trim(line);
    if (line.empty() || line[0] == '#') {
      continue;
    }
    ++candidates;
    const TraceFormat format = ClassifyLine(line);
    if (format != TraceFormat::kUnknown) {
      return format;
    }
  }
  return TraceFormat::kUnknown;
}

std::optional<LoadResult> LoadTraceFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return std::nullopt;
  }
  // Single pre-sized read; the stringstream round trip copied the buffer
  // twice for multi-hundred-MB traces.
  in.seekg(0, std::ios::end);
  const std::streampos size = in.tellg();
  if (size < 0) {
    return std::nullopt;
  }
  in.seekg(0, std::ios::beg);
  std::string text(static_cast<size_t>(size), '\0');
  in.read(text.data(), static_cast<std::streamsize>(text.size()));
  if (!in && !in.eof()) {
    return std::nullopt;
  }

  LoadResult result;
  result.format = DetectFormat(text);
  switch (result.format) {
    case TraceFormat::kSpc: {
      SpcParser parser;
      result.requests = parser.ParseText(text, &result.malformed_lines);
      break;
    }
    case TraceFormat::kMsr: {
      MsrParser parser;
      result.requests = parser.ParseText(text, &result.malformed_lines);
      break;
    }
    case TraceFormat::kUnknown:
      return std::nullopt;
  }
  if (result.requests.empty()) {
    return std::nullopt;
  }
  return result;
}

bool SaveTraceSpc(const std::string& path, const std::vector<IoRequest>& requests,
                  uint64_t sector_bytes) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return false;
  }
  for (const IoRequest& req : requests) {
    out << 0 << "," << req.offset_bytes / sector_bytes << "," << req.size_bytes << ","
        << (req.is_write() ? 'W' : 'R') << "," << FormatDouble(req.arrival_us / 1e6, 6) << "\n";
  }
  return static_cast<bool>(out);
}

}  // namespace tpftl
