// In-memory trace source backed by a vector of requests.

#ifndef SRC_TRACE_VECTOR_TRACE_H_
#define SRC_TRACE_VECTOR_TRACE_H_

#include <utility>
#include <vector>

#include "src/trace/trace_source.h"

namespace tpftl {

class VectorTrace : public TraceSource {
 public:
  VectorTrace() = default;
  explicit VectorTrace(std::vector<IoRequest> requests) : requests_(std::move(requests)) {}

  bool Next(IoRequest* out) override {
    if (pos_ >= requests_.size()) {
      return false;
    }
    *out = requests_[pos_++];
    return true;
  }

  void Rewind() override { pos_ = 0; }

  std::optional<uint64_t> SizeHint() const override { return requests_.size(); }

  const std::vector<IoRequest>& requests() const { return requests_; }
  std::vector<IoRequest>& mutable_requests() { return requests_; }

 private:
  std::vector<IoRequest> requests_;
  size_t pos_ = 0;
};

}  // namespace tpftl

#endif  // SRC_TRACE_VECTOR_TRACE_H_
