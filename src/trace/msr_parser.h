// Parser for the MSR Cambridge block trace format (SNIA IOTTA repository,
// http://iotta.snia.org/traces/388), used by the MSR-ts / MSR-src traces.
//
// Each line:
//   "Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime"
//   Timestamp    Windows filetime (100 ns ticks since 1601).
//   Type         "Read" or "Write" (case-insensitive).
//   Offset,Size  bytes.
//   ResponseTime 100 ns ticks (ignored — the simulator computes its own).

#ifndef SRC_TRACE_MSR_PARSER_H_
#define SRC_TRACE_MSR_PARSER_H_

#include <optional>
#include <string_view>
#include <vector>

#include "src/trace/request.h"

namespace tpftl {

struct MsrParserOptions {
  // If non-negative, only records with this disk number are kept.
  int64_t disk_filter = -1;
  // Subtract the first record's timestamp so traces start near t = 0.
  bool rebase_time = true;
};

class MsrParser {
 public:
  explicit MsrParser(MsrParserOptions options = {}) : options_(options) {}

  std::optional<IoRequest> ParseLine(std::string_view line);

  std::vector<IoRequest> ParseText(std::string_view text, uint64_t* malformed = nullptr);

 private:
  MsrParserOptions options_;
  bool have_base_ = false;
  uint64_t base_ticks_ = 0;
};

}  // namespace tpftl

#endif  // SRC_TRACE_MSR_PARSER_H_
