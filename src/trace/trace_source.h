// Pull interface for request streams.
//
// Both file-backed traces and synthetic generators implement TraceSource so
// the SSD runner can replay either without caring where requests come from.

#ifndef SRC_TRACE_TRACE_SOURCE_H_
#define SRC_TRACE_TRACE_SOURCE_H_

#include <optional>

#include "src/trace/request.h"

namespace tpftl {

class TraceSource {
 public:
  virtual ~TraceSource() = default;

  // Fills `*out` with the next request and returns true, or returns false at
  // end of stream. Requests must be produced in non-decreasing arrival time.
  virtual bool Next(IoRequest* out) = 0;

  // Restarts the stream from the beginning.
  virtual void Rewind() = 0;

  // Total number of requests a full replay will produce, when known without
  // consuming the stream. The runner uses this to size warm-up from the
  // trace's actual length rather than the configured request count (which is
  // wrong for file-backed traces of a different length). Sources that cannot
  // know (e.g. live pipes) return nullopt and the runner falls back to the
  // configured count, clamped to what actually replays.
  virtual std::optional<uint64_t> SizeHint() const { return std::nullopt; }
};

}  // namespace tpftl

#endif  // SRC_TRACE_TRACE_SOURCE_H_
