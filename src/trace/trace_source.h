// Pull interface for request streams.
//
// Both file-backed traces and synthetic generators implement TraceSource so
// the SSD runner can replay either without caring where requests come from.

#ifndef SRC_TRACE_TRACE_SOURCE_H_
#define SRC_TRACE_TRACE_SOURCE_H_

#include "src/trace/request.h"

namespace tpftl {

class TraceSource {
 public:
  virtual ~TraceSource() = default;

  // Fills `*out` with the next request and returns true, or returns false at
  // end of stream. Requests must be produced in non-decreasing arrival time.
  virtual bool Next(IoRequest* out) = 0;

  // Restarts the stream from the beginning.
  virtual void Rewind() = 0;
};

}  // namespace tpftl

#endif  // SRC_TRACE_TRACE_SOURCE_H_
