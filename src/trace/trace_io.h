// File-level trace loading/saving with format auto-detection.

#ifndef SRC_TRACE_TRACE_IO_H_
#define SRC_TRACE_TRACE_IO_H_

#include <optional>
#include <string>
#include <vector>

#include "src/trace/request.h"

namespace tpftl {

enum class TraceFormat { kSpc, kMsr, kUnknown };

// Guesses the format from the first few non-empty lines (header rows and
// truncated leading records are skipped): MSR lines carry "Read"/"Write" in
// field 4; SPC lines have a one-letter opcode in field 4.
TraceFormat DetectFormat(std::string_view text);

struct LoadResult {
  std::vector<IoRequest> requests;
  TraceFormat format = TraceFormat::kUnknown;
  uint64_t malformed_lines = 0;
};

// Loads a trace file; nullopt if the file cannot be read or no line parses.
std::optional<LoadResult> LoadTraceFile(const std::string& path);

// Writes requests in SPC format ("0,LBA,Size,Op,Seconds"), the simpler of the
// two formats; LoadTraceFile round-trips it.
bool SaveTraceSpc(const std::string& path, const std::vector<IoRequest>& requests,
                  uint64_t sector_bytes = 512);

}  // namespace tpftl

#endif  // SRC_TRACE_TRACE_IO_H_
