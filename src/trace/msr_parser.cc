#include "src/trace/msr_parser.h"

#include "src/util/str.h"

namespace tpftl {

std::optional<IoRequest> MsrParser::ParseLine(std::string_view line) {
  line = Trim(line);
  if (line.empty() || line[0] == '#') {
    return std::nullopt;
  }
  const std::vector<std::string_view> fields = Split(line, ',');
  if (fields.size() < 6) {
    return std::nullopt;
  }
  const auto ticks = ParseU64(fields[0]);
  const auto disk = ParseU64(fields[2]);
  const std::string_view type = Trim(fields[3]);
  const auto offset = ParseU64(fields[4]);
  const auto size = ParseU64(fields[5]);
  if (!ticks || !disk || !offset || !size) {
    return std::nullopt;
  }
  if (options_.disk_filter >= 0 && *disk != static_cast<uint64_t>(options_.disk_filter)) {
    return std::nullopt;
  }

  IoRequest req;
  if (EqualsIgnoreCase(type, "Write") || EqualsIgnoreCase(type, "W")) {
    req.kind = IoKind::kWrite;
  } else if (EqualsIgnoreCase(type, "Read") || EqualsIgnoreCase(type, "R")) {
    req.kind = IoKind::kRead;
  } else {
    return std::nullopt;
  }
  if (options_.rebase_time && !have_base_) {
    base_ticks_ = *ticks;
    have_base_ = true;
  }
  const uint64_t rel = options_.rebase_time ? *ticks - base_ticks_ : *ticks;
  req.arrival_us = static_cast<double>(rel) / 10.0;  // 100 ns ticks → µs.
  req.offset_bytes = *offset;
  req.size_bytes = *size == 0 ? 512 : *size;
  return req;
}

std::vector<IoRequest> MsrParser::ParseText(std::string_view text, uint64_t* malformed) {
  std::vector<IoRequest> out;
  uint64_t bad = 0;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string_view::npos) {
      end = text.size();
    }
    const std::string_view line = text.substr(start, end - start);
    if (!Trim(line).empty()) {
      if (auto req = ParseLine(line)) {
        out.push_back(*req);
      } else {
        ++bad;
      }
    }
    if (end == text.size()) {
      break;
    }
    start = end + 1;
  }
  if (malformed != nullptr) {
    *malformed = bad;
  }
  return out;
}

}  // namespace tpftl
