#include "src/trace/msr_parser.h"

#include <algorithm>

#include "src/util/str.h"

namespace tpftl {

std::optional<IoRequest> MsrParser::ParseLine(std::string_view line) {
  line = Trim(line);
  if (line.empty() || line[0] == '#') {
    return std::nullopt;
  }
  // "Timestamp,Hostname,DiskNumber,Type,Offset,Size,..." — walked in place;
  // the hostname field is skipped without being touched.
  FieldCursor cursor(line, ',');
  std::string_view ticks_field;
  std::string_view disk_field;
  std::string_view type_field;
  std::string_view offset_field;
  std::string_view size_field;
  if (!cursor.Next(&ticks_field) || !cursor.Skip(1) || !cursor.Next(&disk_field) ||
      !cursor.Next(&type_field) || !cursor.Next(&offset_field) || !cursor.Next(&size_field)) {
    return std::nullopt;
  }
  const auto ticks = ParseU64(ticks_field);
  const auto disk = ParseU64(disk_field);
  const std::string_view type = Trim(type_field);
  const auto offset = ParseU64(offset_field);
  const auto size = ParseU64(size_field);
  if (!ticks || !disk || !offset || !size) {
    return std::nullopt;
  }
  if (options_.disk_filter >= 0 && *disk != static_cast<uint64_t>(options_.disk_filter)) {
    return std::nullopt;
  }

  IoRequest req;
  if (EqualsIgnoreCase(type, "Write") || EqualsIgnoreCase(type, "W")) {
    req.kind = IoKind::kWrite;
  } else if (EqualsIgnoreCase(type, "Read") || EqualsIgnoreCase(type, "R")) {
    req.kind = IoKind::kRead;
  } else {
    return std::nullopt;
  }
  if (options_.rebase_time && !have_base_) {
    base_ticks_ = *ticks;
    have_base_ = true;
  }
  const uint64_t rel = options_.rebase_time ? *ticks - base_ticks_ : *ticks;
  req.arrival_us = static_cast<double>(rel) / 10.0;  // 100 ns ticks → µs.
  req.offset_bytes = *offset;
  req.size_bytes = *size == 0 ? 512 : *size;
  return req;
}

std::vector<IoRequest> MsrParser::ParseText(std::string_view text, uint64_t* malformed) {
  std::vector<IoRequest> out;
  out.reserve(static_cast<size_t>(std::count(text.begin(), text.end(), '\n')) + 1);
  uint64_t bad = 0;
  LineCursor lines(text);
  std::string_view line;
  while (lines.Next(&line)) {
    if (Trim(line).empty()) {
      continue;
    }
    if (auto req = ParseLine(line)) {
      out.push_back(*req);
    } else {
      ++bad;
    }
  }
  if (malformed != nullptr) {
    *malformed = bad;
  }
  return out;
}

}  // namespace tpftl
