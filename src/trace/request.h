// Host I/O request model.
//
// A trace, whether parsed from disk or synthesized, is a time-ordered stream
// of IoRequest. Offsets/sizes are in bytes; the SSD layer aligns them to
// flash pages (§4.3: a request is "split into one or more page accesses
// according to its start address and length").

#ifndef SRC_TRACE_REQUEST_H_
#define SRC_TRACE_REQUEST_H_

#include <cstdint>

#include "src/flash/types.h"

namespace tpftl {

enum class IoKind : uint8_t { kRead = 0, kWrite = 1, kTrim = 2 };

struct IoRequest {
  MicroSec arrival_us = 0.0;
  uint64_t offset_bytes = 0;
  uint64_t size_bytes = 0;
  IoKind kind = IoKind::kRead;
  // Originating tenant lane for multi-tenant serving (workload/tenant_mix.h).
  // 0 for single-tenant traces; only consulted when SsdConfig::tenant_count
  // is set, so plain replays pay nothing for it.
  uint16_t tenant = 0;

  bool is_write() const { return kind == IoKind::kWrite; }
  bool is_trim() const { return kind == IoKind::kTrim; }

  // First and last logical page touched, given a page size.
  Lpn FirstLpn(uint64_t page_size) const { return offset_bytes / page_size; }
  Lpn LastLpn(uint64_t page_size) const {
    const uint64_t end = offset_bytes + (size_bytes == 0 ? 1 : size_bytes) - 1;
    return end / page_size;
  }
  uint64_t PageCount(uint64_t page_size) const {
    return LastLpn(page_size) - FirstLpn(page_size) + 1;
  }
};

}  // namespace tpftl

#endif  // SRC_TRACE_REQUEST_H_
