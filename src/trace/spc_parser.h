// Parser for the SPC-1/UMass trace format used by the Financial1/Financial2
// traces (http://traces.cs.umass.edu).
//
// Each line: "ASU,LBA,Size,Opcode,Timestamp[,...extra fields ignored]"
//   ASU       application-specific unit (logical volume id) — folded into the
//             address by striding volumes, or filtered to a single ASU.
//   LBA       logical block address in 512-byte sectors.
//   Size      request size in bytes.
//   Opcode    'R'/'r' or 'W'/'w'.
//   Timestamp seconds (float) since trace start.

#ifndef SRC_TRACE_SPC_PARSER_H_
#define SRC_TRACE_SPC_PARSER_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/trace/request.h"

namespace tpftl {

struct SpcParserOptions {
  uint64_t sector_bytes = 512;
  // If >= 0 only this ASU is kept; otherwise all ASUs are merged with each
  // ASU offset by `asu_stride_bytes`.
  int64_t asu_filter = -1;
  uint64_t asu_stride_bytes = 0;
};

class SpcParser {
 public:
  explicit SpcParser(SpcParserOptions options = {}) : options_(options) {}

  // Parses one line; nullopt for malformed or filtered-out lines.
  std::optional<IoRequest> ParseLine(std::string_view line) const;

  // Parses an entire buffer (one line per record). Malformed lines are
  // skipped and counted.
  std::vector<IoRequest> ParseText(std::string_view text, uint64_t* malformed = nullptr) const;

 private:
  SpcParserOptions options_;
};

}  // namespace tpftl

#endif  // SRC_TRACE_SPC_PARSER_H_
