// Experiment runner: workload → preconditioned SSD → measured RunReport.
//
// Every bench binary and example goes through RunExperiment so that warm-up,
// preconditioning, and metric extraction are identical across experiments.

#ifndef SRC_SSD_RUNNER_H_
#define SRC_SSD_RUNNER_H_

#include <functional>
#include <string>
#include <vector>

#include "src/flash/stats.h"
#include "src/ssd/ssd.h"
#include "src/trace/trace_source.h"
#include "src/workload/generator.h"

namespace tpftl {

struct ExperimentConfig {
  WorkloadConfig workload;
  FtlKind ftl_kind = FtlKind::kTpftl;
  TpftlOptions tpftl_options;
  // Parallel NAND structure (SsdConfig::channels/dies_per_channel); the
  // 1 × 1 default reproduces the flat single-die device bit-identically.
  uint32_t channels = 1;
  uint32_t dies_per_channel = 1;
  uint64_t cache_bytes = 0;  // 0 → paper default for the workload's capacity.
  uint64_t gc_threshold = 8;
  GcPolicy gc_policy = GcPolicy::kGreedy;
  WriteBufferConfig write_buffer;  // Disabled unless capacity_pages > 0.
  bool background_gc = false;
  // Fill the logical space before replay (§3.1: SSD in full use).
  bool precondition_fill = true;
  // Extent size of the chunk-shuffled fill (0 → purely sequential fill).
  // Shuffling fragments physical placement like a volume with real write
  // history, without adding garbage debt.
  uint64_t precondition_shuffle_chunk = 4;
  // Additional aging: fraction of logical pages overwritten randomly after
  // the fill. Builds genuine steady-state garbage but makes short runs
  // GC-transient-dominated; off by default.
  double precondition_age_fraction = 0.0;
  // Fraction of the trace replayed before statistics reset (cache warm-up).
  double warmup_fraction = 0.10;
  // Phase-level attribution (SsdConfig::trace_phases): populate
  // RunReport::phases / queue_us_total. Off by default.
  bool trace_phases = false;
  // Span timelines for the first N measured requests (Chrome-trace export
  // via Ssd::trace_log; requires trace_phases).
  uint64_t trace_span_requests = 0;
  // Endurance and wear knobs (SsdConfig equivalents; all default off).
  uint64_t max_erase_cycles = 0;
  uint32_t data_streams = 1;
  bool dynamic_leveling = false;
  bool static_leveling = false;
  uint64_t static_level_threshold = 64;
};

struct RunReport {
  std::string workload_name;
  std::string ftl_name;
  uint64_t requests = 0;
  AtStats stats;
  FlashStats flash;

  double hit_ratio = 0.0;
  double prd = 0.0;
  double write_amplification = 1.0;
  double mean_response_us = 0.0;
  // Accurate quantiles (≤2% relative error, obs::LatencyHistogram) — no
  // longer the old log2-bucket upper bounds.
  double p50_response_us = 0.0;
  double p90_response_us = 0.0;
  double p99_response_us = 0.0;
  double p999_response_us = 0.0;
  double max_response_us = 0.0;
  double response_total_us = 0.0;  // Sum of measured response times.
  uint64_t trans_reads = 0;
  uint64_t trans_writes = 0;
  uint64_t block_erases = 0;
  uint64_t cache_bytes_budget = 0;
  uint64_t cache_bytes_used = 0;
  uint64_t cache_entries = 0;

  // Wear distribution over all physical blocks at extraction time, and host
  // data writes per temperature stream (empty when the FTL tracks none).
  uint64_t erase_min = 0;
  uint64_t erase_max = 0;
  double erase_mean = 0.0;
  double erase_variance = 0.0;
  uint64_t bad_blocks = 0;
  std::vector<uint64_t> stream_writes;

  // Full response-time distribution (copyable; merged by AggregateSweep).
  obs::LatencyHistogram response_hist;
  // Phase attribution + total queueing delay; populated when the run had
  // trace_phases on, all-zero otherwise.
  obs::PhaseTimes phases;
  double queue_us_total = 0.0;
};

// Cross-run aggregation: merged response distribution and summed phase
// attribution over a sweep's reports (merge order = report order, so the
// result is deterministic and thread-count independent).
struct SweepAggregate {
  uint64_t requests = 0;
  obs::LatencyHistogram response_hist;
  obs::PhaseTimes phases;
  double queue_us_total = 0.0;
};
SweepAggregate AggregateSweep(const std::vector<RunReport>& reports);

// Called after each measured request; `index` counts measured requests.
using RunObserver = std::function<void(const Ssd& ssd, uint64_t index)>;

// --- closed-loop (queue-depth) driving ---
//
// Instead of replaying trace arrival times (open loop), keep exactly
// `queue_depth` requests outstanding: each request is issued the moment the
// earliest in-flight request completes (min-heap of completion times). On a
// multi-die device deeper queues let independent requests overlap on
// different dies, which is the scaling the BENCH_e2e v2 sweep measures.
struct ClosedLoopConfig {
  uint32_t queue_depth = 1;
  // Requests served at full depth before ResetStats. The reset moves the
  // measurement epoch past the warm-up backlog, so queueing delay built up
  // while warming can never pollute the measured responses (the per-QD
  // warm-up fix for the closed-loop timing artifact).
  uint64_t warmup_requests = 0;
  uint64_t measured_requests = 0;  // 0 → the rest of the trace.
};

struct ClosedLoopReport {
  RunReport report;  // Measured-window stats (post-warm-up).
  uint32_t queue_depth = 1;
  uint64_t measured = 0;
  // Simulated time the measured window spanned, and the resulting
  // simulated-time throughput (requests per simulated second).
  MicroSec makespan_us = 0.0;
  double sim_requests_per_sec = 0.0;
  // Busy fraction per die over the measured window (Ssd::DieUtilization).
  std::vector<double> die_utilization;
};

ClosedLoopReport RunClosedLoop(const ExperimentConfig& config, TraceSource& trace,
                               const ClosedLoopConfig& loop,
                               const RunObserver& observer = nullptr);

// --- open-loop (trace-serving) driving ---
//
// Replays the trace's own arrival clock: requests are submitted at their
// arrival times whether or not the device has caught up, so queue backlog
// builds and drains the way it does under production traffic (the
// closed-loop driver instead *couples* arrivals to completions and can only
// measure capacity). Pair with workload/arrival.h + workload/tenant_mix.h
// for Poisson/diurnal/burst multi-tenant streams.
struct ServingConfig {
  // Requests replayed (same admission policy) before ResetStats.
  uint64_t warmup_requests = 0;
  // Admission control: a request arriving when the device is more than this
  // far behind (device_free_at − arrival) is dropped, not served — the
  // open-loop analogue of a filled-up submission queue. 0 = never drop.
  MicroSec max_queue_us = 0.0;
  // Per-tenant QoS lanes (SsdConfig::tenant_count). 0 = untagged traffic.
  uint32_t tenant_count = 0;
  // Display names for the lanes (TenantMixSource::TenantNames()); padded
  // with "tenant-N" when shorter than tenant_count.
  std::vector<std::string> tenant_names;
};

// Per-tenant slice of a serving run, extracted from the device's
// TenantMetricName metrics. The counter sums across tenants equal the
// run's global totals exactly (see the tenant-accounting tests).
struct TenantServingStats {
  std::string name;
  uint64_t requests = 0;
  uint64_t dropped = 0;
  uint64_t pages_read = 0;
  uint64_t pages_written = 0;
  uint64_t pages_trimmed = 0;
  uint64_t gc_migrations = 0;
  uint64_t block_erases = 0;
  double mean_response_us = 0.0;
  double p50_response_us = 0.0;
  double p90_response_us = 0.0;
  double p99_response_us = 0.0;
  double p999_response_us = 0.0;
  double max_response_us = 0.0;
  // Data-page write amplification attributed to this tenant's requests:
  // (pages_written + gc_migrations) / pages_written; 1.0 when it wrote
  // nothing.
  double write_amp = 1.0;
  // This tenant's share of the run's total GC flash time (0 when the run
  // had trace_phases off or no GC ran).
  double gc_time_share = 0.0;
};

struct ServingReport {
  RunReport report;  // Measured-window stats (served requests only).
  uint64_t offered = 0;  // Measured-window arrivals (served + dropped).
  uint64_t served = 0;
  uint64_t dropped = 0;
  // Span of measured arrivals (last arrival − measurement epoch) and the
  // offered rate over it.
  MicroSec arrival_span_us = 0.0;
  double offered_rps = 0.0;
  // Time to drain everything (last finish − epoch) and the achieved rate
  // over it. For an underloaded device makespan ≈ arrival span and
  // achieved ≈ offered; under overload the makespan stretches past the
  // arrival span and the achieved rate is the device's capacity.
  MicroSec makespan_us = 0.0;
  double achieved_rps = 0.0;
  // Worst queueing backlog any measured arrival saw, and what was left
  // when arrivals stopped.
  MicroSec peak_queue_us = 0.0;
  MicroSec final_backlog_us = 0.0;
  std::vector<TenantServingStats> tenants;
};

ServingReport RunServing(const ExperimentConfig& config, TraceSource& trace,
                         const ServingConfig& serving,
                         const RunObserver& observer = nullptr);

// Runs the experiment on its synthetic workload.
RunReport RunExperiment(const ExperimentConfig& config, const RunObserver& observer = nullptr);

// Same, but replaying an explicit trace through an already-built SSD config;
// `workload.address_space_bytes` still sizes the device.
RunReport RunTrace(const ExperimentConfig& config, TraceSource& trace,
                   const RunObserver& observer = nullptr);

// Extracts a report from a finished SSD (exposed for custom harnesses).
RunReport ExtractReport(const Ssd& ssd, const std::string& workload_name, uint64_t requests);

// Called as each sweep run finishes (from worker threads, serialized by the
// sweep — implementations need no locking); `index` is the config's position.
using SweepObserver = std::function<void(size_t index, const RunReport& report)>;

// Runs independent experiments across a thread pool and returns their
// reports in config order. Every run owns its SSD, workload, and RNGs, so
// results are bit-identical to calling RunExperiment serially — threads only
// change wall-clock time. threads == 0 → hardware concurrency.
std::vector<RunReport> RunSweep(const std::vector<ExperimentConfig>& configs,
                                unsigned threads = 0,
                                const SweepObserver& on_complete = nullptr);

}  // namespace tpftl

#endif  // SRC_SSD_RUNNER_H_
