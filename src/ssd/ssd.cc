#include "src/ssd/ssd.h"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "src/ftl/demand_ftl.h"
#include "src/util/assert.h"
#include "src/util/rng.h"

namespace tpftl {
namespace {

FlashGeometry BuildGeometry(const SsdConfig& config) {
  FlashGeometry g =
      MakeGeometryParallel(config.logical_bytes, config.channels,
                           config.dies_per_channel, config.planes_per_die,
                           config.over_provision);
  g.sparse_segment_pages = config.sparse_segment_pages;
  g.max_erase_cycles = config.max_erase_cycles;
  return g;
}

}  // namespace

std::string TenantMetricName(uint32_t tenant, std::string_view suffix) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "ssd.tenant.%02u.", tenant);
  std::string name(buf);
  name.append(suffix);
  return name;
}

Ssd::Ssd(const SsdConfig& config)
    : geometry_(BuildGeometry(config)),
      flash_(geometry_),
      logical_pages_(config.logical_bytes / geometry_.page_size_bytes),
      write_buffer_(config.write_buffer),
      background_gc_(config.background_gc),
      trace_phases_(config.trace_phases),
      response_hist_(metrics_.histogram("ssd.response_us")),
      journal_appends_(metrics_.counter("flash.journal_appends")),
      checkpoint_bytes_(metrics_.counter("flash.checkpoint_bytes_written")),
      resident_segments_(metrics_.gauge("flash.resident_segments")),
      model_hits_(metrics_.counter("ftl.model_hits")),
      model_misses_(metrics_.counter("ftl.model_misses")),
      model_retrains_(metrics_.counter("ftl.model_retrains")),
      trace_log_(config.trace_span_requests) {
  cache_bytes_ =
      config.cache_bytes != 0 ? config.cache_bytes : PaperCacheBytes(geometry_, logical_pages_);
  FtlEnv env;
  env.flash = &flash_;
  env.logical_pages = logical_pages_;
  env.cache_bytes = cache_bytes_;
  env.gc_threshold = config.gc_threshold;
  env.gc_policy = config.gc_policy;
  env.checkpoint = config.checkpoint;
  env.data_streams = config.data_streams;
  env.dynamic_leveling = config.dynamic_leveling;
  env.static_leveling = config.static_leveling;
  env.static_level_threshold = config.static_level_threshold;
  ftl_ = CreateFtl(config.ftl_kind, env, config.tpftl_options);
  tenants_.resize(config.tenant_count);
  for (uint32_t t = 0; t < config.tenant_count; ++t) {
    TenantMetrics& tm = tenants_[t];
    tm.response = metrics_.histogram(TenantMetricName(t, "response_us"));
    tm.requests = metrics_.counter(TenantMetricName(t, "requests"));
    tm.pages_read = metrics_.counter(TenantMetricName(t, "pages_read"));
    tm.pages_written = metrics_.counter(TenantMetricName(t, "pages_written"));
    tm.pages_trimmed = metrics_.counter(TenantMetricName(t, "pages_trimmed"));
    tm.gc_migrations = metrics_.counter(TenantMetricName(t, "gc_migrations"));
    tm.block_erases = metrics_.counter(TenantMetricName(t, "block_erases"));
  }
  SyncDeviceMetrics();  // Seed the resident-segments gauge at creation.
}

void Ssd::SyncDeviceMetrics() {
  const FlashStats& s = flash_.stats();
  synced_meta_appends_ = s.meta_appends;
  journal_appends_->Set(s.meta_appends);
  checkpoint_bytes_->Set(s.meta_bytes_written);
  resident_segments_->Set(static_cast<double>(flash_.ResidentSegments()));
}

void Ssd::SyncModelMetrics() {
  const AtStats& s = ftl_->stats();
  synced_model_lookups_ = s.model_hits + s.model_misses;
  model_hits_->Set(s.model_hits);
  model_misses_->Set(s.model_misses);
  model_retrains_->Set(s.model_retrains);
}

MicroSec Ssd::ServiceRequestPages(const IoRequest& request) {
  const uint64_t page_size = geometry_.page_size_bytes;
  MicroSec service = 0.0;
  const Lpn first = request.FirstLpn(page_size) % logical_pages_;
  const uint64_t pages = std::min(request.PageCount(page_size), logical_pages_);
  for (uint64_t i = 0; i < pages; ++i) {
    const Lpn lpn = (first + i) % logical_pages_;
    if (request.is_trim()) {
      write_buffer_.Discard(lpn);
      service += ftl_->TrimPage(lpn);
      continue;
    }
    if (!write_buffer_.enabled()) {
      service += request.is_write() ? ftl_->WritePage(lpn) : ftl_->ReadPage(lpn);
      continue;
    }
    // Data buffer in the path (§2.1): RAM hits are free; evicted dirty
    // pages flush through the FTL.
    if (request.is_write()) {
      const Lpn flush = write_buffer_.PutWrite(lpn);
      if (flush != kInvalidLpn) {
        obs::ScopedPhase phase(obs::Phase::kFlush, /*pin=*/true);
        service += ftl_->WritePage(flush);
      }
    } else if (!write_buffer_.ServeRead(lpn)) {
      service += ftl_->ReadPage(lpn);
      const Lpn flush = write_buffer_.AdmitClean(lpn);
      if (flush != kInvalidLpn) {
        obs::ScopedPhase phase(obs::Phase::kFlush, /*pin=*/true);
        service += ftl_->WritePage(flush);
      }
    }
  }
  return service;
}

MicroSec Ssd::Submit(const IoRequest& request) {
  const bool multi_die = flash_.multi_die();

  // Tenant accounting: snapshot the device-wide GC/erase counters so the
  // work this request triggers can be attributed to its tenant by delta.
  // The deltas partition the globals exactly (every migration/erase happens
  // inside exactly one Submit), which is what the exact-merge tests check.
  uint64_t tenant_gc_before = 0;
  uint64_t tenant_erases_before = 0;
  if (!tenants_.empty()) [[unlikely]] {
    TPFTL_CHECK_MSG(request.tenant < tenants_.size(),
                    "IoRequest::tenant out of range for SsdConfig::tenant_count");
    const AtStats& before = ftl_->stats();
    tenant_gc_before = before.gc_data_migrations + before.gc_trans_migrations;
    tenant_erases_before = flash_.stats().block_erases;
  }

  ftl_->BeginRequest(request);

  // Tracing sinks for this request. With trace_phases off both pointers stay
  // null and every obs:: call below (and in the layers underneath) is a
  // predicted-taken branch; either way the timing arithmetic is untouched.
  // The sinks are Ssd-owned scratch so the disabled path does no per-request
  // zeroing.
  obs::PhaseTimes* times = nullptr;
  obs::RequestSpans* spans = nullptr;
  if (trace_phases_) [[unlikely]] {
    scratch_times_.Reset();
    times = &scratch_times_;
    if (trace_log_.WantsMore()) {
      scratch_spans_.Clear();
      spans = &scratch_spans_;
    }
  }
  obs::ScopedRequestContext trace_ctx(times, spans);

  MicroSec effective_arrival = 0.0;
  if (multi_die) [[unlikely]] {
    // Multi-die timing runs the idle-gap background GC *before* this
    // request's flash ops so its programs land earlier on the die timelines,
    // and anchors the request on the timelines before any op executes.
    if (background_gc_ && request.arrival_us > device_free_at_) {
      obs::ScopedPhase phase(obs::Phase::kBackground, /*pin=*/true);
      device_free_at_ += ftl_->BackgroundGc(request.arrival_us - device_free_at_);
    }
    effective_arrival = std::max(request.arrival_us, stats_epoch_us_);
    flash_.BeginRequestAt(effective_arrival);
  }

  const MicroSec service = ServiceRequestPages(request);

  MicroSec start = 0.0;
  MicroSec finish = 0.0;
  if (multi_die) [[unlikely]] {
    // Dispatch is not the bottleneck: the request starts at its (clamped)
    // arrival and each flash op queued on max(request progress, die busy
    // horizon). Response is the overlapped makespan, not the serial sum.
    start = effective_arrival;
    finish = std::max(flash_.request_finish_us(), effective_arrival);
    device_free_at_ = std::max(device_free_at_, finish);
  } else {
    // Idle gap before this arrival: spend it on background GC if enabled.
    if (background_gc_ && request.arrival_us > device_free_at_) {
      obs::ScopedPhase phase(obs::Phase::kBackground, /*pin=*/true);
      device_free_at_ += ftl_->BackgroundGc(request.arrival_us - device_free_at_);
    }
    // Measurement clamp: a request that arrived before the last ResetStats
    // epoch is billed from the epoch, so queueing delay caused by warm-up-era
    // service stays out of measured response times.
    effective_arrival = std::max(request.arrival_us, stats_epoch_us_);
    // FIFO queue: the device starts this request when it is free.
    // device_free_at_ >= stats_epoch_us_ always, so clamping the arrival does
    // not change the start time physics.
    start = std::max(device_free_at_, effective_arrival);
    device_free_at_ = start + service;
    finish = device_free_at_;
  }
  const MicroSec response = finish - effective_arrival;
  response_.Add(response);
  response_hist_->Add(response);
  if (!tenants_.empty()) [[unlikely]] {
    TenantMetrics& tm = tenants_[request.tenant];
    tm.response->Add(response);
    tm.requests->Increment();
    const uint64_t pages =
        std::min(request.PageCount(geometry_.page_size_bytes), logical_pages_);
    (request.is_trim()   ? tm.pages_trimmed
     : request.is_write() ? tm.pages_written
                          : tm.pages_read)
        ->Increment(pages);
    const AtStats& after = ftl_->stats();
    tm.gc_migrations->Increment(after.gc_data_migrations +
                                after.gc_trans_migrations - tenant_gc_before);
    tm.block_erases->Increment(flash_.stats().block_erases -
                               tenant_erases_before);
    if (trace_phases_) {
      tm.phases.Merge(scratch_times_);
    }
  }
  if (trace_phases_) [[unlikely]] {
    const MicroSec queue_us = start - effective_arrival;
    phase_times_.Merge(*times);
    queue_us_total_ += queue_us;
    metrics_.histogram("ssd.queue_us")->Add(queue_us);
    if (spans != nullptr) {
      const uint64_t page_size = geometry_.page_size_bytes;
      obs::RequestTraceRecord rec;
      rec.index = requests_served_;
      rec.lpn = request.FirstLpn(page_size) % logical_pages_;
      rec.length =
          static_cast<uint32_t>(std::min(request.PageCount(page_size), logical_pages_));
      rec.is_write = request.is_write();
      rec.tenant = tenants_.empty() ? 0 : request.tenant;
      rec.arrival_us = effective_arrival;
      rec.start_us = start;
      rec.finish_us = finish;
      rec.queue_us = queue_us;
      rec.phases = *times;
      rec.spans = spans->spans();
      rec.instants = spans->instants();
      trace_log_.Add(std::move(rec));
    } else if (trace_log_.capacity() > 0) {
      trace_log_.NoteDropped();  // Log full: request served without spans.
    }
  }
  // Mirror journal/checkpoint activity into the registry only when the
  // device's meta-append count moved; with checkpointing disabled this is
  // one always-equal load+compare per request.
  if (flash_.stats().meta_appends != synced_meta_appends_) [[unlikely]] {
    SyncDeviceMetrics();
  }
  // Same treatment for the learned-index counters: every consultation bumps
  // hits or misses, so for the eight model-free FTLs this stays one
  // always-equal load+compare per request.
  const AtStats& at = ftl_->stats();
  if (at.model_hits + at.model_misses != synced_model_lookups_) [[unlikely]] {
    SyncModelMetrics();
  }
  ++requests_served_;
  return response;
}

void Ssd::FillSequential() {
  for (Lpn lpn = 0; lpn < logical_pages_; ++lpn) {
    ftl_->WritePage(lpn);
  }
}

void Ssd::FillShuffled(uint64_t chunk_pages, uint64_t seed) {
  TPFTL_CHECK(chunk_pages > 0);
  const uint64_t chunks = (logical_pages_ + chunk_pages - 1) / chunk_pages;
  std::vector<uint32_t> order(chunks);
  for (uint64_t i = 0; i < chunks; ++i) {
    order[i] = static_cast<uint32_t>(i);
  }
  Rng rng(seed);
  for (uint64_t i = chunks - 1; i > 0; --i) {
    std::swap(order[i], order[rng.Below(i + 1)]);
  }
  for (const uint32_t chunk : order) {
    const Lpn begin = static_cast<Lpn>(chunk) * chunk_pages;
    const Lpn end = std::min(begin + chunk_pages, logical_pages_);
    for (Lpn lpn = begin; lpn < end; ++lpn) {
      ftl_->WritePage(lpn);
    }
  }
}

void Ssd::AgeRandom(double fraction, uint64_t seed) {
  TPFTL_CHECK(fraction >= 0.0 && fraction <= 1.0);
  Rng rng(seed);
  const auto writes = static_cast<uint64_t>(fraction * static_cast<double>(logical_pages_));
  for (uint64_t i = 0; i < writes; ++i) {
    ftl_->WritePage(rng.Below(logical_pages_));
  }
}

std::vector<double> Ssd::DieUtilization() const {
  const uint32_t dies = flash_.total_dies();
  std::vector<double> util(dies, 0.0);
  const MicroSec window = device_free_at_ - stats_epoch_us_;
  if (window <= 0.0) {
    return util;
  }
  for (uint32_t die = 0; die < dies; ++die) {
    // die_busy_us resets with the flash stats at ResetStats, so busy time
    // and window cover the same measurement epoch.
    util[die] = std::min(1.0, flash_.die_busy_us(die) / window);
  }
  return util;
}

void Ssd::ResetStats() {
  ftl_->ResetStats();  // Also resets the flash counters.
  write_buffer_.ResetStats();
  response_.Reset();
  metrics_.ResetValues();  // Includes all per-tenant metrics.
  SyncDeviceMetrics();  // Flash counters just reset; re-seed the mirror.
  for (TenantMetrics& tm : tenants_) {
    tm.phases.Reset();
  }
  phase_times_.Reset();
  queue_us_total_ = 0.0;
  trace_log_.Clear();
  requests_served_ = 0;
  // New measurement epoch: in-flight queue backlog stays physical (the
  // device is still busy until device_free_at_) but is not billed to
  // post-reset requests.
  stats_epoch_us_ = device_free_at_;
}

}  // namespace tpftl
