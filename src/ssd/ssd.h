// SSD device model (§5.1's simulated SSD).
//
// Owns the NAND device and one FTL, splits host requests into page accesses
// (§4.3), and models service timing: the flash back end serves requests
// FIFO, so a request's response time is its queueing delay plus the flash
// time of its address translations, user page accesses, and any garbage
// collection they trigger — the same composition the paper's "system
// response time" metric uses.
//
// Observability: every response time feeds the per-device metrics registry
// ("ssd.response_us", an HDR-style histogram with accurate quantiles). With
// SsdConfig::trace_phases the device additionally attributes each request's
// flash time to phases (translation / user access / GC / flush / background
// GC, see src/obs/phase.h) and can capture per-request span timelines for
// Chrome-trace export. Tracing observes the timing arithmetic without
// changing it: reports are bit-identical with tracing on or off.

#ifndef SRC_SSD_SSD_H_
#define SRC_SSD_SSD_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/ftl_factory.h"
#include "src/flash/nand.h"
#include "src/ftl/checkpoint.h"
#include "src/obs/metrics.h"
#include "src/obs/phase.h"
#include "src/obs/trace_event.h"
#include "src/ssd/write_buffer.h"
#include "src/trace/request.h"
#include "src/util/running_stats.h"

namespace tpftl {

struct SsdConfig {
  uint64_t logical_bytes = 512ULL << 20;
  double over_provision = 0.15;  // Table 3.
  // Parallel NAND structure (powers of two; see geometry.h). The default
  // 1 × 1 × 1 reproduces the paper's flat single-die device bit-identically;
  // anything larger enables per-die overlapped timing in Submit.
  uint32_t channels = 1;
  uint32_t dies_per_channel = 1;
  uint32_t planes_per_die = 1;
  FtlKind ftl_kind = FtlKind::kTpftl;
  TpftlOptions tpftl_options;
  // Mapping-cache budget including the GTD; 0 selects the paper's default
  // (block-level table + GTD, i.e. 1/128 of the full page-level table).
  uint64_t cache_bytes = 0;
  uint64_t gc_threshold = 8;
  GcPolicy gc_policy = GcPolicy::kGreedy;
  // Optional CFLRU data buffer in front of the FTL (disabled by default —
  // the paper's experiments isolate the mapping cache).
  WriteBufferConfig write_buffer;
  // Opportunistic GC in idle gaps between requests (off by default — the
  // paper's timing model charges all GC to the triggering request).
  bool background_gc = false;
  // Phase-level attribution of every NAND operation a request triggers
  // (src/obs/). Off by default: the replay hot path then pays only one
  // thread-local null check per flash op.
  bool trace_phases = false;
  // With trace_phases on, additionally record span timelines for the first
  // N requests after each ResetStats, for WriteChromeTrace drill-down.
  uint64_t trace_span_requests = 0;
  // Checkpointed recovery (src/ftl/checkpoint.h). Off by default; when
  // enabled the device journals block-dirty records and checkpoints the
  // translation directory, and the journal/checkpoint activity is exported
  // through the metrics registry (see SyncDeviceMetrics).
  CheckpointConfig checkpoint;
  // 0 = dense backing arrays (the default; exact PR-2 behavior). A power of
  // two enables materialize-on-write sparse arena segments of that many
  // pages, for TB-scale virtual capacities whose written footprint is small.
  // Must be a multiple of the geometry's entries-per-translation-page.
  uint64_t sparse_segment_pages = 0;
  // Per-block endurance budget; 0 = unlimited (the default). A block whose
  // erase count reaches the budget is retired as bad (flash/nand.h), so the
  // device ages toward end of life (Ftl::worn_out).
  uint64_t max_erase_cycles = 0;
  // Hot/cold write streams and the wear-leveling policy layer (see FtlEnv).
  // All default off for bit-identity with single-stream behavior.
  uint32_t data_streams = 1;
  bool dynamic_leveling = false;
  bool static_leveling = false;
  uint64_t static_level_threshold = 64;
  // Per-tenant QoS accounting lanes. 0 (the default) disables it entirely:
  // IoRequest::tenant is never consulted and Submit pays one predicted
  // branch. When set, every request's tenant id must be < tenant_count and
  // the registry grows per-tenant response histograms plus page/GC/erase
  // counters under "ssd.tenant.NN.*" (see TenantMetricName), all of which
  // merge exactly back to the global totals.
  uint32_t tenant_count = 0;
};

// Registry name of a per-tenant metric: TenantMetricName(2, "response_us")
// → "ssd.tenant.02.response_us". Zero-padded so registry (map) order equals
// tenant order for up to 100 tenants.
std::string TenantMetricName(uint32_t tenant, std::string_view suffix);

class Ssd {
 public:
  explicit Ssd(const SsdConfig& config);

  Ssd(const Ssd&) = delete;
  Ssd& operator=(const Ssd&) = delete;

  // Serves one host request; returns its response time (queue + service).
  MicroSec Submit(const IoRequest& request);

  // Preconditioning: writes every logical page once, sequentially, so the
  // device is "in full use" (§3.1); timing and queues are not affected.
  void FillSequential();

  // Preconditioning variant: writes every logical page exactly once, in
  // chunk-shuffled order (`chunk_pages`-sized extents land contiguously but
  // extents are scattered). Leaves the same zero-garbage state as
  // FillSequential while fragmenting physical placement the way a volume
  // with real write history looks — so whole-page-compression schemes
  // (S-FTL) don't get an artificially pristine background.
  void FillShuffled(uint64_t chunk_pages = 32, uint64_t seed = 0x5EEDF111);

  // Aging: overwrites `fraction` of the logical pages in random order,
  // fragmenting physical placement and building up steady-state garbage the
  // way months of production traffic would. Run after FillSequential.
  void AgeRandom(double fraction, uint64_t seed = 0xA6E5EED);

  // Clears FTL, flash, response, and observability statistics (keeps
  // mapping state), and moves the measurement epoch to the current device
  // time: queueing delay accumulated before the reset never leaks into
  // post-reset response times (see Submit).
  void ResetStats();

  Ftl& ftl() { return *ftl_; }
  const Ftl& ftl() const { return *ftl_; }
  NandFlash& flash() { return flash_; }
  const NandFlash& flash() const { return flash_; }
  const FlashGeometry& geometry() const { return geometry_; }
  uint64_t logical_pages() const { return logical_pages_; }
  uint64_t cache_bytes() const { return cache_bytes_; }

  WriteBuffer& write_buffer() { return write_buffer_; }
  const WriteBuffer& write_buffer() const { return write_buffer_; }

  const RunningStats& response_stats() const { return response_; }
  const obs::LatencyHistogram& response_histogram() const {
    return *response_hist_;
  }
  uint64_t requests_served() const { return requests_served_; }

  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  // Measurement epoch set by the last ResetStats, and the device-busy
  // horizon (max request finish time seen so far).
  MicroSec stats_epoch_us() const { return stats_epoch_us_; }
  MicroSec device_free_at() const { return device_free_at_; }
  // Fraction of the measured window (stats_epoch .. device_free_at) each die
  // spent busy. All 1.0-or-less entries; one entry per die.
  std::vector<double> DieUtilization() const;

  // Per-tenant QoS accounting (SsdConfig::tenant_count lanes; 0 when off).
  uint32_t tenant_count() const {
    return static_cast<uint32_t>(tenants_.size());
  }
  // Phase attribution of tenant `t`'s requests since the last ResetStats
  // (all zeros unless trace_phases is on). The registry holds the rest of
  // the per-tenant metrics under TenantMetricName(t, ...).
  const obs::PhaseTimes& tenant_phase_times(uint32_t tenant) const {
    return tenants_[tenant].phases;
  }

  // Aggregate phase attribution since the last ResetStats (all zeros unless
  // trace_phases is on).
  const obs::PhaseTimes& phase_times() const { return phase_times_; }
  // Total FIFO queueing delay since the last ResetStats (trace_phases only).
  MicroSec queue_us_total() const { return queue_us_total_; }
  bool tracing_phases() const { return trace_phases_; }
  const obs::RequestTraceLog& trace_log() const { return trace_log_; }

 private:
  // The per-page FTL/write-buffer work of one request; returns the summed
  // flash service time. Shared by the single-die and multi-die timing paths.
  MicroSec ServiceRequestPages(const IoRequest& request);
  // Mirrors the device's metadata-journal activity into the registry:
  // flash.journal_appends / flash.checkpoint_bytes_written counters and the
  // flash.resident_segments gauge. Called only when the flash meta-append
  // count moved, so the checkpoint-disabled hot path pays one load+compare.
  void SyncDeviceMetrics();
  // Mirrors the FTL's learned-index counters (ftl.model_hits / model_misses
  // / model_retrains) into the registry; same moved-only gating.
  void SyncModelMetrics();

  FlashGeometry geometry_;
  NandFlash flash_;
  uint64_t logical_pages_;
  uint64_t cache_bytes_;
  std::unique_ptr<Ftl> ftl_;
  WriteBuffer write_buffer_;
  bool background_gc_ = false;
  bool trace_phases_ = false;

  MicroSec device_free_at_ = 0.0;
  // Measurement epoch: arrivals are clamped to this when computing response
  // times, so service rendered before the last ResetStats (e.g. warm-up)
  // cannot be billed to measured requests. Queue physics are unaffected.
  MicroSec stats_epoch_us_ = 0.0;
  RunningStats response_;
  obs::MetricsRegistry metrics_;
  obs::LatencyHistogram* response_hist_;  // metrics_["ssd.response_us"]
  obs::Counter* journal_appends_;         // metrics_["flash.journal_appends"]
  obs::Counter* checkpoint_bytes_;        // metrics_["flash.checkpoint_bytes_written"]
  obs::Gauge* resident_segments_;         // metrics_["flash.resident_segments"]
  obs::Counter* model_hits_;              // metrics_["ftl.model_hits"]
  obs::Counter* model_misses_;            // metrics_["ftl.model_misses"]
  obs::Counter* model_retrains_;          // metrics_["ftl.model_retrains"]
  uint64_t synced_meta_appends_ = 0;
  uint64_t synced_model_lookups_ = 0;
  obs::PhaseTimes phase_times_;
  MicroSec queue_us_total_ = 0.0;
  obs::RequestTraceLog trace_log_;
  uint64_t requests_served_ = 0;
  // Per-request tracing scratch, reused across Submit calls so the disabled
  // path pays no per-request construction (touched only when trace_phases_).
  obs::PhaseTimes scratch_times_;
  obs::RequestSpans scratch_spans_;

  // One accounting lane per tenant (empty unless SsdConfig::tenant_count).
  // The registry pointers are cached at construction; the GC/erase counters
  // are filled from before/after deltas of the FTL and flash stats inside
  // Submit, so summing the lanes reproduces the globals exactly.
  struct TenantMetrics {
    obs::LatencyHistogram* response = nullptr;
    obs::Counter* requests = nullptr;
    obs::Counter* pages_read = nullptr;
    obs::Counter* pages_written = nullptr;
    obs::Counter* pages_trimmed = nullptr;
    obs::Counter* gc_migrations = nullptr;
    obs::Counter* block_erases = nullptr;
    obs::PhaseTimes phases;
  };
  std::vector<TenantMetrics> tenants_;
};

}  // namespace tpftl

#endif  // SRC_SSD_SSD_H_
