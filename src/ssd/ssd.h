// SSD device model (§5.1's simulated SSD).
//
// Owns the NAND device and one FTL, splits host requests into page accesses
// (§4.3), and models service timing: the flash back end serves requests
// FIFO, so a request's response time is its queueing delay plus the flash
// time of its address translations, user page accesses, and any garbage
// collection they trigger — the same composition the paper's "system
// response time" metric uses.

#ifndef SRC_SSD_SSD_H_
#define SRC_SSD_SSD_H_

#include <memory>

#include "src/core/ftl_factory.h"
#include "src/flash/nand.h"
#include "src/ssd/write_buffer.h"
#include "src/trace/request.h"
#include "src/util/histogram.h"
#include "src/util/running_stats.h"

namespace tpftl {

struct SsdConfig {
  uint64_t logical_bytes = 512ULL << 20;
  double over_provision = 0.15;  // Table 3.
  FtlKind ftl_kind = FtlKind::kTpftl;
  TpftlOptions tpftl_options;
  // Mapping-cache budget including the GTD; 0 selects the paper's default
  // (block-level table + GTD, i.e. 1/128 of the full page-level table).
  uint64_t cache_bytes = 0;
  uint64_t gc_threshold = 8;
  GcPolicy gc_policy = GcPolicy::kGreedy;
  // Optional CFLRU data buffer in front of the FTL (disabled by default —
  // the paper's experiments isolate the mapping cache).
  WriteBufferConfig write_buffer;
  // Opportunistic GC in idle gaps between requests (off by default — the
  // paper's timing model charges all GC to the triggering request).
  bool background_gc = false;
};

class Ssd {
 public:
  explicit Ssd(const SsdConfig& config);

  Ssd(const Ssd&) = delete;
  Ssd& operator=(const Ssd&) = delete;

  // Serves one host request; returns its response time (queue + service).
  MicroSec Submit(const IoRequest& request);

  // Preconditioning: writes every logical page once, sequentially, so the
  // device is "in full use" (§3.1); timing and queues are not affected.
  void FillSequential();

  // Preconditioning variant: writes every logical page exactly once, in
  // chunk-shuffled order (`chunk_pages`-sized extents land contiguously but
  // extents are scattered). Leaves the same zero-garbage state as
  // FillSequential while fragmenting physical placement the way a volume
  // with real write history looks — so whole-page-compression schemes
  // (S-FTL) don't get an artificially pristine background.
  void FillShuffled(uint64_t chunk_pages = 32, uint64_t seed = 0x5EEDF111);

  // Aging: overwrites `fraction` of the logical pages in random order,
  // fragmenting physical placement and building up steady-state garbage the
  // way months of production traffic would. Run after FillSequential.
  void AgeRandom(double fraction, uint64_t seed = 0xA6E5EED);

  // Clears FTL, flash, and response statistics (keeps mapping state).
  void ResetStats();

  Ftl& ftl() { return *ftl_; }
  const Ftl& ftl() const { return *ftl_; }
  NandFlash& flash() { return flash_; }
  const NandFlash& flash() const { return flash_; }
  const FlashGeometry& geometry() const { return geometry_; }
  uint64_t logical_pages() const { return logical_pages_; }
  uint64_t cache_bytes() const { return cache_bytes_; }

  WriteBuffer& write_buffer() { return write_buffer_; }
  const WriteBuffer& write_buffer() const { return write_buffer_; }

  const RunningStats& response_stats() const { return response_; }
  const LogHistogram& response_histogram() const { return response_hist_; }
  uint64_t requests_served() const { return requests_served_; }

 private:
  FlashGeometry geometry_;
  NandFlash flash_;
  uint64_t logical_pages_;
  uint64_t cache_bytes_;
  std::unique_ptr<Ftl> ftl_;
  WriteBuffer write_buffer_;
  bool background_gc_ = false;

  MicroSec device_free_at_ = 0.0;
  RunningStats response_;
  LogHistogram response_hist_;
  uint64_t requests_served_ = 0;
};

}  // namespace tpftl

#endif  // SRC_SSD_SSD_H_
