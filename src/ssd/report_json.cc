#include "src/ssd/report_json.h"

#include <sstream>

namespace tpftl {
namespace {

void Escape(const std::string& s, std::ostream& os) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      default:
        os << c;
    }
  }
  os << '"';
}

}  // namespace

void WriteReportJson(const RunReport& r, std::ostream& os) {
  os << "{";
  os << "\"workload\":";
  Escape(r.workload_name, os);
  os << ",\"ftl\":";
  Escape(r.ftl_name, os);
  os << ",\"requests\":" << r.requests;
  os << ",\"hit_ratio\":" << r.hit_ratio;
  os << ",\"prd\":" << r.prd;
  os << ",\"write_amplification\":" << r.write_amplification;
  os << ",\"mean_response_us\":" << r.mean_response_us;
  os << ",\"p50_response_us\":" << r.p50_response_us;
  os << ",\"p90_response_us\":" << r.p90_response_us;
  os << ",\"p99_response_us\":" << r.p99_response_us;
  os << ",\"p999_response_us\":" << r.p999_response_us;
  os << ",\"max_response_us\":" << r.max_response_us;
  os << ",\"response_total_us\":" << r.response_total_us;
  os << ",\"trans_reads\":" << r.trans_reads;
  os << ",\"trans_writes\":" << r.trans_writes;
  os << ",\"block_erases\":" << r.block_erases;
  os << ",\"cache_bytes_budget\":" << r.cache_bytes_budget;
  os << ",\"cache_bytes_used\":" << r.cache_bytes_used;
  os << ",\"cache_entries\":" << r.cache_entries;
  os << ",\"erase_min\":" << r.erase_min;
  os << ",\"erase_max\":" << r.erase_max;
  os << ",\"erase_mean\":" << r.erase_mean;
  os << ",\"erase_variance\":" << r.erase_variance;
  os << ",\"bad_blocks\":" << r.bad_blocks;
  os << ",\"stream_writes\":[";
  for (size_t i = 0; i < r.stream_writes.size(); ++i) {
    os << (i == 0 ? "" : ",") << r.stream_writes[i];
  }
  os << "]";
  os << ",\"stats\":{";
  os << "\"lookups\":" << r.stats.lookups;
  os << ",\"hits\":" << r.stats.hits;
  os << ",\"misses\":" << r.stats.misses;
  os << ",\"evictions\":" << r.stats.evictions;
  os << ",\"dirty_evictions\":" << r.stats.dirty_evictions;
  os << ",\"batch_writebacks\":" << r.stats.batch_writebacks;
  os << ",\"host_page_reads\":" << r.stats.host_page_reads;
  os << ",\"host_page_writes\":" << r.stats.host_page_writes;
  os << ",\"gc_data_blocks\":" << r.stats.gc_data_blocks;
  os << ",\"gc_trans_blocks\":" << r.stats.gc_trans_blocks;
  os << ",\"gc_data_migrations\":" << r.stats.gc_data_migrations;
  os << ",\"gc_trans_migrations\":" << r.stats.gc_trans_migrations;
  os << ",\"gc_hits\":" << r.stats.gc_hits;
  os << ",\"gc_misses\":" << r.stats.gc_misses;
  os << ",\"static_level_blocks\":" << r.stats.static_level_blocks;
  os << ",\"switch_merges\":" << r.stats.switch_merges;
  os << ",\"partial_merges\":" << r.stats.partial_merges;
  os << ",\"full_merges\":" << r.stats.full_merges;
  os << ",\"model_hits\":" << r.stats.model_hits;
  os << ",\"model_misses\":" << r.stats.model_misses;
  os << ",\"model_probe_reads\":" << r.stats.model_probe_reads;
  os << ",\"model_retrains\":" << r.stats.model_retrains;
  os << "}";
  os << ",\"flash\":{";
  os << "\"page_reads\":" << r.flash.page_reads;
  os << ",\"page_writes\":" << r.flash.page_writes;
  os << ",\"block_erases\":" << r.flash.block_erases;
  os << ",\"busy_time_us\":" << r.flash.busy_time_us;
  os << "}";
  os << ",\"phases\":{";
  os << "\"queue_us\":" << r.queue_us_total;
  for (size_t p = 0; p < obs::kPhaseCount; ++p) {
    const auto phase = static_cast<obs::Phase>(p);
    os << ",\"" << obs::PhaseName(phase)
       << "_us\":" << r.phases.PhaseUs(phase);
    os << ",\"" << obs::PhaseName(phase)
       << "_ops\":" << r.phases.PhaseOps(phase);
  }
  os << ",\"gc_victim_scans\":" << r.phases.gc_victim_scans;
  os << "}}";
}

std::string ReportToJson(const RunReport& r) {
  std::ostringstream os;
  WriteReportJson(r, os);
  return os.str();
}

}  // namespace tpftl
