// CFLRU data buffer (Park et al., CASES 2006 — the paper's reference [38]).
//
// §2.1: an SSD's internal RAM serves as both mapping cache and *data
// buffer*. This is the data-buffer half, kept optional so the paper's
// experiments (which isolate the mapping cache) run without it. The policy
// is Clean-First LRU: the LRU tail of the buffer forms a clean-first window;
// eviction prefers dropping a clean page (free) over flushing a dirty one
// (a flash write through the FTL) — the very insight TPFTL's clean-first
// replacement (§4.4) carries over to the mapping cache.
//
// The buffer holds page-granular state only (dirty/clean), no payload:
// simulation needs hit/flush accounting, not bytes.

#ifndef SRC_SSD_WRITE_BUFFER_H_
#define SRC_SSD_WRITE_BUFFER_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "src/flash/types.h"

namespace tpftl {

struct WriteBufferConfig {
  uint64_t capacity_pages = 0;         // 0 disables the buffer.
  double clean_window_fraction = 0.5;  // CFLRU window over the LRU tail.
};

struct WriteBufferStats {
  uint64_t read_hits = 0;
  uint64_t write_hits = 0;   // Overwrites absorbed in RAM.
  uint64_t flushes = 0;      // Dirty evictions → FTL writes.
  uint64_t clean_drops = 0;  // Clean evictions (free).
  void Reset() { *this = WriteBufferStats(); }
};

class WriteBuffer {
 public:
  explicit WriteBuffer(const WriteBufferConfig& config);

  bool enabled() const { return capacity_ > 0; }

  // Buffers a host write. If the page is present it is refreshed (write
  // absorbed); else inserted dirty. Returns the LPN that must be written to
  // flash *now* (an evicted dirty page) or kInvalidLpn when none.
  Lpn PutWrite(Lpn lpn);

  // Serves a host read: true if buffered (RAM hit). On a miss the caller
  // reads flash and then calls AdmitClean().
  bool ServeRead(Lpn lpn);

  // Inserts a clean copy after a read miss. Returns an evicted dirty LPN
  // needing a flash write, or kInvalidLpn.
  Lpn AdmitClean(Lpn lpn);

  // Drops a page without flushing (TRIM): the data is gone by definition.
  void Discard(Lpn lpn);

  // Drains every dirty page (shutdown/flush barrier); returns them.
  std::vector<Lpn> DrainDirty();

  uint64_t size() const { return lru_.size(); }
  uint64_t capacity() const { return capacity_; }
  uint64_t dirty_count() const { return dirty_count_; }
  const WriteBufferStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

 private:
  struct Entry {
    Lpn lpn = kInvalidLpn;
    bool dirty = false;
  };
  using EntryList = std::list<Entry>;

  // Evicts one page per CFLRU; returns a dirty LPN to flush or kInvalidLpn.
  Lpn EvictOne();

  uint64_t capacity_;
  uint64_t clean_window_;
  EntryList lru_;  // MRU at front.
  std::unordered_map<Lpn, EntryList::iterator> index_;
  uint64_t dirty_count_ = 0;
  WriteBufferStats stats_;
};

}  // namespace tpftl

#endif  // SRC_SSD_WRITE_BUFFER_H_
