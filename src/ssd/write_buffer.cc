#include "src/ssd/write_buffer.h"

#include <algorithm>
#include <vector>

#include "src/util/assert.h"

namespace tpftl {

WriteBuffer::WriteBuffer(const WriteBufferConfig& config) : capacity_(config.capacity_pages) {
  TPFTL_CHECK(config.clean_window_fraction >= 0.0 && config.clean_window_fraction <= 1.0);
  clean_window_ = static_cast<uint64_t>(static_cast<double>(capacity_) *
                                        config.clean_window_fraction);
  clean_window_ = std::max<uint64_t>(clean_window_, capacity_ > 0 ? 1 : 0);
}

Lpn WriteBuffer::EvictOne() {
  TPFTL_CHECK(!lru_.empty());
  // CFLRU: within the clean-first window at the LRU tail, evict the
  // LRU-most clean page; if the window holds only dirty pages, flush the
  // LRU dirty page.
  auto victim = std::prev(lru_.end());
  uint64_t scanned = 0;
  for (auto it = std::prev(lru_.end());; --it) {
    if (!it->dirty) {
      victim = it;
      break;
    }
    if (++scanned >= clean_window_ || it == lru_.begin()) {
      break;
    }
  }
  const Entry entry = *victim;
  index_.erase(entry.lpn);
  lru_.erase(victim);
  if (entry.dirty) {
    --dirty_count_;
    ++stats_.flushes;
    return entry.lpn;
  }
  ++stats_.clean_drops;
  return kInvalidLpn;
}

Lpn WriteBuffer::PutWrite(Lpn lpn) {
  TPFTL_CHECK(enabled());
  if (const auto it = index_.find(lpn); it != index_.end()) {
    ++stats_.write_hits;
    if (!it->second->dirty) {
      it->second->dirty = true;
      ++dirty_count_;
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    return kInvalidLpn;
  }
  Lpn to_flush = kInvalidLpn;
  if (lru_.size() >= capacity_) {
    to_flush = EvictOne();
  }
  lru_.push_front(Entry{lpn, true});
  index_[lpn] = lru_.begin();
  ++dirty_count_;
  return to_flush;
}

bool WriteBuffer::ServeRead(Lpn lpn) {
  if (!enabled()) {
    return false;
  }
  const auto it = index_.find(lpn);
  if (it == index_.end()) {
    return false;
  }
  ++stats_.read_hits;
  lru_.splice(lru_.begin(), lru_, it->second);
  return true;
}

Lpn WriteBuffer::AdmitClean(Lpn lpn) {
  TPFTL_CHECK(enabled());
  TPFTL_DCHECK(!index_.contains(lpn));
  Lpn to_flush = kInvalidLpn;
  if (lru_.size() >= capacity_) {
    to_flush = EvictOne();
  }
  lru_.push_front(Entry{lpn, false});
  index_[lpn] = lru_.begin();
  return to_flush;
}

void WriteBuffer::Discard(Lpn lpn) {
  const auto it = index_.find(lpn);
  if (it == index_.end()) {
    return;
  }
  if (it->second->dirty) {
    --dirty_count_;
  }
  lru_.erase(it->second);
  index_.erase(it);
}

std::vector<Lpn> WriteBuffer::DrainDirty() {
  std::vector<Lpn> dirty;
  dirty.reserve(dirty_count_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->dirty) {
      dirty.push_back(it->lpn);
      index_.erase(it->lpn);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
  dirty_count_ = 0;
  stats_.flushes += dirty.size();
  return dirty;
}

}  // namespace tpftl
