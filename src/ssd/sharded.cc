#include "src/ssd/sharded.h"

#include <algorithm>

#include "src/util/assert.h"

namespace tpftl {

ShardedSsd::ShardedSsd(const ShardedConfig& config)
    : pool_(std::max(
          1u, std::min(config.threads == 0 ? config.shards : config.threads,
                       config.shards))) {
  TPFTL_CHECK_MSG(config.shards >= 1 && (config.shards & (config.shards - 1)) == 0,
                  "shard count must be a power of two");
  SsdConfig shard_config = config.base;
  TPFTL_CHECK_MSG(config.base.logical_bytes % config.shards == 0,
                  "logical capacity must split evenly across shards");
  shard_config.logical_bytes = config.base.logical_bytes / config.shards;
  if (config.base.cache_bytes != 0) {
    shard_config.cache_bytes =
        std::max<uint64_t>(1, config.base.cache_bytes / config.shards);
  }
  shards_.reserve(config.shards);
  for (uint32_t s = 0; s < config.shards; ++s) {
    shards_.push_back(std::make_unique<Ssd>(shard_config));
  }
  logical_pages_ = shards_[0]->logical_pages() * config.shards;
  page_size_bytes_ = shards_[0]->geometry().page_size_bytes;

  const uint32_t threads = pool_.thread_count();
  workers_.reserve(threads);
  for (uint32_t t = 0; t < threads; ++t) {
    workers_.push_back(std::make_unique<Worker>());
  }
  for (uint32_t t = 0; t < threads; ++t) {
    pool_.Submit([this, t] { WorkerLoop(t); });
  }
}

ShardedSsd::~ShardedSsd() {
  for (std::unique_ptr<Worker>& worker : workers_) {
    std::lock_guard<std::mutex> lock(worker->mutex);
    worker->stop = true;
    worker->work_ready.notify_all();
  }
  pool_.Wait();  // Worker loops exit once their queues run dry.
}

void ShardedSsd::WorkerLoop(uint32_t worker_index) {
  Worker& worker = *workers_[worker_index];
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(worker.mutex);
      worker.work_ready.wait(lock,
                             [&] { return worker.stop || !worker.queue.empty(); });
      if (worker.queue.empty()) {
        return;  // stop requested and nothing left to serve.
      }
      job = worker.queue.front();
      worker.queue.pop_front();
    }
    Ssd& ssd = *shards_[job.shard];
    if (job.fill) [[unlikely]] {
      ssd.FillSequential();
    } else {
      ssd.Submit(job.request);
    }
    {
      std::lock_guard<std::mutex> lock(worker.mutex);
      if (--worker.pending == 0) {
        worker.drained.notify_all();
      }
    }
  }
}

void ShardedSsd::Enqueue(const Job& job) {
  Worker& worker = *workers_[job.shard % workers_.size()];
  std::lock_guard<std::mutex> lock(worker.mutex);
  worker.queue.push_back(job);
  ++worker.pending;
  worker.work_ready.notify_one();
}

void ShardedSsd::SubmitRun(Lpn first, uint64_t pages, const IoRequest& request) {
  const auto num_shards = static_cast<uint32_t>(shards_.size());
  const Lpn last = first + pages - 1;
  for (uint32_t s = 0; s < num_shards; ++s) {
    // First global page at or after `first` owned by shard s.
    const Lpn g0 =
        first + ((s + num_shards - static_cast<uint32_t>(first % num_shards)) %
                 num_shards);
    if (g0 > last) {
      continue;
    }
    // Globals g0, g0 + S, g0 + 2S, … are locals g0/S, g0/S + 1, … — one
    // contiguous local run, expressible as an ordinary IoRequest.
    const uint64_t count = (last - g0) / num_shards + 1;
    Job job;
    job.shard = s;
    job.request = request;
    job.request.offset_bytes = (g0 / num_shards) * page_size_bytes_;
    job.request.size_bytes = count * page_size_bytes_;
    Enqueue(job);
  }
}

void ShardedSsd::Submit(const IoRequest& request) {
  if (shards_.size() == 1) {
    Job job;
    job.shard = 0;
    job.request = request;
    Enqueue(job);
    return;
  }
  // Mirror Ssd::Submit's wrapping: the first page wraps into the logical
  // space, and a run crossing the end continues from page 0.
  const Lpn first = request.FirstLpn(page_size_bytes_) % logical_pages_;
  const uint64_t pages =
      std::min(request.PageCount(page_size_bytes_), logical_pages_);
  const uint64_t head = std::min(pages, logical_pages_ - first);
  SubmitRun(first, head, request);
  if (pages > head) {
    SubmitRun(0, pages - head, request);
  }
}

void ShardedSsd::Drain() {
  for (const std::unique_ptr<Worker>& worker : workers_) {
    std::unique_lock<std::mutex> lock(worker->mutex);
    worker->drained.wait(lock, [&] { return worker->pending == 0; });
  }
}

void ShardedSsd::FillSequential() {
  for (uint32_t s = 0; s < shards_.size(); ++s) {
    Job job;
    job.shard = s;
    job.fill = true;
    Enqueue(job);
  }
  Drain();
}

void ShardedSsd::ResetStats() {
  Drain();
  for (const std::unique_ptr<Ssd>& shard : shards_) {
    shard->ResetStats();
  }
}

Ppn ShardedSsd::Probe(Lpn global_lpn) const {
  const auto num_shards = static_cast<uint32_t>(shards_.size());
  return shards_[global_lpn % num_shards]->ftl().Probe(global_lpn / num_shards);
}

void ShardedSsd::MergeMetricsInto(obs::MetricsRegistry* out) const {
  for (const std::unique_ptr<Ssd>& shard : shards_) {
    out->MergeFrom(shard->metrics());
  }
}

uint64_t ShardedSsd::TotalRequestsServed() const {
  uint64_t total = 0;
  for (const std::unique_ptr<Ssd>& shard : shards_) {
    total += shard->requests_served();
  }
  return total;
}

MicroSec ShardedSsd::MaxDeviceFreeAt() const {
  MicroSec max = 0.0;
  for (const std::unique_ptr<Ssd>& shard : shards_) {
    max = std::max(max, shard->device_free_at());
  }
  return max;
}

MicroSec ShardedSsd::MinStatsEpoch() const {
  MicroSec min = shards_[0]->stats_epoch_us();
  for (const std::unique_ptr<Ssd>& shard : shards_) {
    min = std::min(min, shard->stats_epoch_us());
  }
  return min;
}

std::vector<double> ShardedSsd::DieUtilization() const {
  const MicroSec window = MaxDeviceFreeAt() - MinStatsEpoch();
  std::vector<double> util;
  for (const std::unique_ptr<Ssd>& shard : shards_) {
    const uint32_t dies = shard->flash().total_dies();
    for (uint32_t die = 0; die < dies; ++die) {
      util.push_back(window <= 0.0
                         ? 0.0
                         : std::min(1.0, shard->flash().die_busy_us(die) / window));
    }
  }
  return util;
}

}  // namespace tpftl
