// JSON serialization of RunReport — lets external tooling (plotters,
// regression dashboards) consume experiment results without parsing tables.

#ifndef SRC_SSD_REPORT_JSON_H_
#define SRC_SSD_REPORT_JSON_H_

#include <ostream>
#include <string>

#include "src/ssd/runner.h"

namespace tpftl {

// Emits one report as a JSON object (stable key order, no trailing newline).
void WriteReportJson(const RunReport& report, std::ostream& os);

// Convenience: the object as a string.
std::string ReportToJson(const RunReport& report);

}  // namespace tpftl

#endif  // SRC_SSD_REPORT_JSON_H_
