// Sharded concurrent SSD front-end.
//
// Partitions the device by LPN interleaving into S independent shards — each
// shard is a complete Ssd (its own NAND dies, mapping cache, GTD/translation
// store, and BlockManager), so there is no shared mutable FTL state and no
// global lock anywhere on the hot path. Global LPN g lives on shard
// g mod S at shard-local LPN g / S; interleaving (rather than range
// splitting) spreads Zipf-hot low LPNs across all shards, and a contiguous
// global page run still maps to one contiguous local run per shard, so every
// sub-request is an ordinary IoRequest.
//
// Threading: N worker threads (run on the shared src/util/thread_pool), each
// owning a disjoint set of shards (shard i → worker i mod N). The dispatcher
// splits each host request into per-shard sub-requests and enqueues them on
// the owning worker's FIFO queue. Because every shard is touched by exactly
// one worker and each worker drains its queue in order, the per-shard
// operation sequence — and therefore all host-visible state — is identical
// for any thread count, including threads == 1. Only wall-clock changes.
//
// Simulated time advances independently per shard (each shard models its own
// die timelines); aggregate throughput over a workload is
// total-sub-requests / max-over-shards(busy horizon), computed by callers
// from MaxDeviceFreeAt()/MinStatsEpoch().
//
// Stats: per-shard MetricsRegistry instances are merged exactly via
// MetricsRegistry::MergeFrom (counters add, HDR histograms add bucket-wise),
// so merged quantiles are what a single registry observing every sample
// would report.

#ifndef SRC_SSD_SHARDED_H_
#define SRC_SSD_SHARDED_H_

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "src/ssd/ssd.h"
#include "src/util/thread_pool.h"

namespace tpftl {

struct ShardedConfig {
  // Template for every shard. `logical_bytes` is the GLOBAL capacity; each
  // shard gets logical_bytes / shards (must stay block-aligned). A non-zero
  // cache_bytes is likewise split evenly. channels/dies_per_channel are
  // per shard, so the device total is shards × channels × dies_per_channel
  // dies.
  SsdConfig base;
  uint32_t shards = 1;   // Power of two.
  uint32_t threads = 1;  // Worker threads; clamped to `shards`. 0 → shards.
};

class ShardedSsd {
 public:
  explicit ShardedSsd(const ShardedConfig& config);
  ~ShardedSsd();

  ShardedSsd(const ShardedSsd&) = delete;
  ShardedSsd& operator=(const ShardedSsd&) = delete;

  // Splits one host request into per-shard sub-requests and enqueues them.
  // Asynchronous; call Drain() before inspecting any shard state. Must be
  // called from one dispatching thread at a time.
  void Submit(const IoRequest& request);

  // Barrier: blocks until every enqueued sub-request has been served. After
  // Drain() returns, shard state reads from the caller are race-free (the
  // queue mutexes order them after the workers' writes).
  void Drain();

  // Parallel preconditioning: every shard fills its logical space
  // sequentially, concurrently with the others. Includes a Drain().
  void FillSequential();

  // Drains, then resets every shard's statistics (new measurement epoch on
  // each shard's own timeline).
  void ResetStats();

  // Physical mapping of a global LPN on its owning shard (Drain() first).
  Ppn Probe(Lpn global_lpn) const;

  uint32_t shards() const { return static_cast<uint32_t>(shards_.size()); }
  uint32_t threads() const { return static_cast<uint32_t>(workers_.size()); }
  uint64_t logical_pages() const { return logical_pages_; }
  Ssd& shard(uint32_t i) { return *shards_[i]; }
  const Ssd& shard(uint32_t i) const { return *shards_[i]; }

  // --- merged views (call after Drain) ---
  // Exact merge of every shard's registry (includes "ssd.response_us")
  // folded into `out` via MetricsRegistry::MergeFrom.
  void MergeMetricsInto(obs::MetricsRegistry* out) const;
  // Sub-requests served across all shards since the last ResetStats.
  uint64_t TotalRequestsServed() const;
  // Busy horizon / measurement epoch across shards, for aggregate
  // throughput: ops / (MaxDeviceFreeAt() - MinStatsEpoch()).
  MicroSec MaxDeviceFreeAt() const;
  MicroSec MinStatsEpoch() const;
  // Per-die busy fraction over the global measurement window, concatenated
  // shard-major: entry s * dies_per_shard + d is shard s's die d.
  std::vector<double> DieUtilization() const;

 private:
  struct Job {
    uint32_t shard = 0;
    bool fill = false;  // FillSequential marker instead of an I/O.
    IoRequest request;
  };
  // One worker: a FIFO of jobs for the shards it owns. `pending` counts
  // queued plus in-flight jobs so Drain can wait for true quiescence.
  struct Worker {
    std::mutex mutex;
    std::condition_variable work_ready;
    std::condition_variable drained;
    std::deque<Job> queue;
    uint64_t pending = 0;
    bool stop = false;
  };

  void WorkerLoop(uint32_t worker_index);
  void Enqueue(const Job& job);
  // Per-shard split of one contiguous (non-wrapping) global page run.
  void SubmitRun(Lpn first, uint64_t pages, const IoRequest& request);

  uint64_t logical_pages_ = 0;     // Global (sum over shards).
  uint64_t page_size_bytes_ = 0;
  std::vector<std::unique_ptr<Ssd>> shards_;
  std::vector<std::unique_ptr<Worker>> workers_;
  ThreadPool pool_;  // Hosts the long-lived worker loops.
};

}  // namespace tpftl

#endif  // SRC_SSD_SHARDED_H_
