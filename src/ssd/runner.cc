#include "src/ssd/runner.h"

#include <algorithm>
#include <functional>
#include <mutex>
#include <queue>

#include "src/util/assert.h"
#include "src/util/thread_pool.h"

namespace tpftl {
namespace {

SsdConfig MakeSsdConfig(const ExperimentConfig& config) {
  SsdConfig ssd_config;
  ssd_config.logical_bytes = config.workload.address_space_bytes;
  ssd_config.channels = config.channels;
  ssd_config.dies_per_channel = config.dies_per_channel;
  ssd_config.ftl_kind = config.ftl_kind;
  ssd_config.tpftl_options = config.tpftl_options;
  ssd_config.cache_bytes = config.cache_bytes;
  ssd_config.gc_threshold = config.gc_threshold;
  ssd_config.gc_policy = config.gc_policy;
  ssd_config.write_buffer = config.write_buffer;
  ssd_config.background_gc = config.background_gc;
  ssd_config.trace_phases = config.trace_phases;
  ssd_config.trace_span_requests = config.trace_span_requests;
  ssd_config.max_erase_cycles = config.max_erase_cycles;
  ssd_config.data_streams = config.data_streams;
  ssd_config.dynamic_leveling = config.dynamic_leveling;
  ssd_config.static_leveling = config.static_leveling;
  ssd_config.static_level_threshold = config.static_level_threshold;
  return ssd_config;
}

void Precondition(Ssd& ssd, const ExperimentConfig& config) {
  if (!config.precondition_fill) {
    return;
  }
  if (config.precondition_shuffle_chunk > 0) {
    ssd.FillShuffled(config.precondition_shuffle_chunk);
  } else {
    ssd.FillSequential();
  }
  if (config.precondition_age_fraction > 0.0) {
    ssd.AgeRandom(config.precondition_age_fraction);
  }
}

}  // namespace

RunReport ExtractReport(const Ssd& ssd, const std::string& workload_name, uint64_t requests) {
  RunReport r;
  r.workload_name = workload_name;
  r.ftl_name = ssd.ftl().name();
  r.requests = requests;
  r.stats = ssd.ftl().stats();
  r.flash = ssd.flash().stats();
  r.hit_ratio = r.stats.hit_ratio();
  r.prd = r.stats.dirty_replacement_probability();
  r.write_amplification = r.stats.write_amplification();
  r.mean_response_us = ssd.response_stats().mean();
  const obs::LatencyHistogram& hist = ssd.response_histogram();
  r.p50_response_us = hist.Quantile(0.50);
  r.p90_response_us = hist.Quantile(0.90);
  r.p99_response_us = hist.Quantile(0.99);
  r.p999_response_us = hist.Quantile(0.999);
  r.max_response_us = ssd.response_stats().max();
  r.response_total_us = ssd.response_stats().sum();
  r.response_hist = hist;
  r.phases = ssd.phase_times();
  r.queue_us_total = ssd.queue_us_total();
  r.trans_reads = r.stats.trans_reads_total();
  r.trans_writes = r.stats.trans_writes_total();
  r.block_erases = r.flash.block_erases;
  r.cache_bytes_budget = ssd.cache_bytes();
  r.cache_bytes_used = ssd.ftl().cache_bytes_used();
  r.cache_entries = ssd.ftl().cache_entry_count();
  // Wear distribution straight off the device: lifetime erase counts, not
  // stats-window deltas, so leveling effects are visible across resets.
  const NandFlash& flash = ssd.flash();
  const uint64_t total_blocks = ssd.geometry().total_blocks;
  uint64_t min_e = ~0ULL;
  uint64_t max_e = 0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (BlockId b = 0; b < total_blocks; ++b) {
    const uint64_t e = flash.block(b).erase_count();
    min_e = std::min(min_e, e);
    max_e = std::max(max_e, e);
    sum += static_cast<double>(e);
    sum_sq += static_cast<double>(e) * static_cast<double>(e);
    r.bad_blocks += flash.IsBad(b) ? 1 : 0;
  }
  r.erase_min = total_blocks > 0 ? min_e : 0;
  r.erase_max = max_e;
  if (total_blocks > 0) {
    const double n = static_cast<double>(total_blocks);
    r.erase_mean = sum / n;
    r.erase_variance = std::max(0.0, sum_sq / n - r.erase_mean * r.erase_mean);
  }
  r.stream_writes = ssd.ftl().stream_write_counts();
  return r;
}

RunReport RunTrace(const ExperimentConfig& config, TraceSource& trace,
                   const RunObserver& observer) {
  Ssd ssd(MakeSsdConfig(config));
  Precondition(ssd, config);

  // Size warm-up from the trace's actual length when it is known: for
  // file-backed traces the configured request count routinely disagrees with
  // the file, and deriving warm-up from the config would then measure from
  // the wrong point (or swallow the whole replay as warm-up).
  const uint64_t replay_total = trace.SizeHint().value_or(config.workload.num_requests);
  const auto warmup_count = static_cast<uint64_t>(
      static_cast<double>(replay_total) * config.warmup_fraction);
  uint64_t replayed = 0;
  uint64_t measured = 0;
  bool reset_done = false;
  if (warmup_count == 0) {
    ssd.ResetStats();
    reset_done = true;
  }

  IoRequest request;
  trace.Rewind();
  while (trace.Next(&request)) {
    if (!reset_done && replayed >= warmup_count) {
      ssd.ResetStats();
      reset_done = true;
    }
    ssd.Submit(request);
    ++replayed;
    if (reset_done) {
      ++measured;
      if (observer) {
        observer(ssd, measured);
      }
    }
  }
  if (!reset_done) {
    // Degenerate: the whole trace was warm-up. Report what we have.
    measured = replayed;
  }
  return ExtractReport(ssd, config.workload.name, measured);
}

ClosedLoopReport RunClosedLoop(const ExperimentConfig& config, TraceSource& trace,
                               const ClosedLoopConfig& loop,
                               const RunObserver& observer) {
  TPFTL_CHECK(loop.queue_depth >= 1);
  Ssd ssd(MakeSsdConfig(config));
  Precondition(ssd, config);

  // Min-heap of in-flight completion times; the next request is issued the
  // instant the earliest one finishes. Seeding with queue_depth zeros puts
  // the full window in flight at t = 0.
  std::priority_queue<MicroSec, std::vector<MicroSec>, std::greater<MicroSec>>
      completions;
  for (uint32_t i = 0; i < loop.queue_depth; ++i) {
    completions.push(0.0);
  }

  // A request's completion is its effective (epoch-clamped) arrival plus its
  // response — both Submit timing paths define response relative to the
  // effective arrival, so this is the exact finish instant.
  const auto serve = [&](IoRequest& request) {
    const MicroSec arrival = completions.top();
    completions.pop();
    request.arrival_us = arrival;
    const MicroSec effective = std::max(arrival, ssd.stats_epoch_us());
    const MicroSec response = ssd.Submit(request);
    completions.push(effective + response);
  };

  trace.Rewind();
  IoRequest request;
  uint64_t warmed = 0;
  while (warmed < loop.warmup_requests && trace.Next(&request)) {
    serve(request);
    ++warmed;
  }
  // Fresh measurement epoch at full depth: warm-up backlog stays physical
  // (the dies are still busy) but is never billed to measured requests.
  ssd.ResetStats();

  uint64_t measured = 0;
  while ((loop.measured_requests == 0 || measured < loop.measured_requests) &&
         trace.Next(&request)) {
    serve(request);
    ++measured;
    if (observer) {
      observer(ssd, measured);
    }
  }

  ClosedLoopReport out;
  out.report = ExtractReport(ssd, config.workload.name, measured);
  out.queue_depth = loop.queue_depth;
  out.measured = measured;
  out.makespan_us = ssd.device_free_at() - ssd.stats_epoch_us();
  out.sim_requests_per_sec =
      out.makespan_us > 0.0
          ? static_cast<double>(measured) / out.makespan_us * 1e6
          : 0.0;
  out.die_utilization = ssd.DieUtilization();
  return out;
}

ServingReport RunServing(const ExperimentConfig& config, TraceSource& trace,
                         const ServingConfig& serving,
                         const RunObserver& observer) {
  SsdConfig ssd_config = MakeSsdConfig(config);
  ssd_config.tenant_count = serving.tenant_count;
  Ssd ssd(ssd_config);
  Precondition(ssd, config);

  const uint32_t lanes = std::max<uint32_t>(1, serving.tenant_count);
  std::vector<uint64_t> tenant_drops(lanes, 0);

  // Admission check against the open-loop backlog this arrival would join.
  // Drops happen *before* Submit, so the device (and its per-tenant
  // accounting) only ever sees admitted requests.
  const auto backlog_at = [&](const IoRequest& request) -> MicroSec {
    const MicroSec effective =
        std::max(request.arrival_us, ssd.stats_epoch_us());
    return ssd.device_free_at() - effective;
  };

  trace.Rewind();
  IoRequest request;
  uint64_t warmed = 0;
  while (warmed < serving.warmup_requests && trace.Next(&request)) {
    if (serving.max_queue_us <= 0.0 ||
        backlog_at(request) <= serving.max_queue_us) {
      ssd.Submit(request);
    }
    ++warmed;
  }
  ssd.ResetStats();

  ServingReport out;
  MicroSec last_arrival_us = ssd.stats_epoch_us();
  while (trace.Next(&request)) {
    const MicroSec backlog = backlog_at(request);
    out.peak_queue_us = std::max(out.peak_queue_us, backlog);
    last_arrival_us =
        std::max(last_arrival_us,
                 std::max(request.arrival_us, ssd.stats_epoch_us()));
    ++out.offered;
    if (serving.max_queue_us > 0.0 && backlog > serving.max_queue_us) {
      ++out.dropped;
      ++tenant_drops[request.tenant < lanes ? request.tenant : 0];
      continue;
    }
    ssd.Submit(request);
    ++out.served;
    if (observer) {
      observer(ssd, out.served);
    }
  }

  out.report = ExtractReport(ssd, config.workload.name, out.served);
  out.arrival_span_us = last_arrival_us - ssd.stats_epoch_us();
  out.makespan_us =
      std::max(ssd.device_free_at(), last_arrival_us) - ssd.stats_epoch_us();
  out.final_backlog_us = std::max(0.0, ssd.device_free_at() - last_arrival_us);
  out.offered_rps = out.arrival_span_us > 0.0
                        ? static_cast<double>(out.offered) /
                              out.arrival_span_us * 1e6
                        : 0.0;
  out.achieved_rps = out.makespan_us > 0.0
                         ? static_cast<double>(out.served) /
                               out.makespan_us * 1e6
                         : 0.0;

  // Per-tenant slices from the device's registry lanes.
  const double total_gc_us = ssd.phase_times().PhaseUs(obs::Phase::kGc);
  const obs::MetricsRegistry& metrics = ssd.metrics();
  const auto counter_value = [&](uint32_t t, std::string_view suffix) {
    const obs::Counter* c = metrics.FindCounter(TenantMetricName(t, suffix));
    return c != nullptr ? c->value() : 0;
  };
  for (uint32_t t = 0; t < serving.tenant_count; ++t) {
    TenantServingStats ts;
    ts.name = t < serving.tenant_names.size()
                  ? serving.tenant_names[t]
                  : "tenant-" + std::to_string(t);
    ts.requests = counter_value(t, "requests");
    ts.dropped = tenant_drops[t];
    ts.pages_read = counter_value(t, "pages_read");
    ts.pages_written = counter_value(t, "pages_written");
    ts.pages_trimmed = counter_value(t, "pages_trimmed");
    ts.gc_migrations = counter_value(t, "gc_migrations");
    ts.block_erases = counter_value(t, "block_erases");
    const obs::LatencyHistogram* hist =
        metrics.FindHistogram(TenantMetricName(t, "response_us"));
    if (hist != nullptr && hist->total() > 0) {
      ts.mean_response_us = hist->Mean();
      ts.p50_response_us = hist->Quantile(0.50);
      ts.p90_response_us = hist->Quantile(0.90);
      ts.p99_response_us = hist->Quantile(0.99);
      ts.p999_response_us = hist->Quantile(0.999);
      ts.max_response_us = hist->max();
    }
    ts.write_amp =
        ts.pages_written > 0
            ? static_cast<double>(ts.pages_written + ts.gc_migrations) /
                  static_cast<double>(ts.pages_written)
            : 1.0;
    ts.gc_time_share =
        total_gc_us > 0.0
            ? ssd.tenant_phase_times(t).PhaseUs(obs::Phase::kGc) / total_gc_us
            : 0.0;
    out.tenants.push_back(std::move(ts));
  }
  return out;
}

SweepAggregate AggregateSweep(const std::vector<RunReport>& reports) {
  SweepAggregate agg;
  for (const RunReport& r : reports) {
    agg.requests += r.requests;
    agg.response_hist.MergeFrom(r.response_hist);
    agg.phases.Merge(r.phases);
    agg.queue_us_total += r.queue_us_total;
  }
  return agg;
}

RunReport RunExperiment(const ExperimentConfig& config, const RunObserver& observer) {
  SyntheticWorkload workload(config.workload);
  return RunTrace(config, workload, observer);
}

std::vector<RunReport> RunSweep(const std::vector<ExperimentConfig>& configs, unsigned threads,
                                const SweepObserver& on_complete) {
  std::vector<RunReport> reports(configs.size());
  if (configs.empty()) {
    return reports;
  }
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads = std::min<unsigned>(threads, static_cast<unsigned>(configs.size()));
  if (threads == 1) {
    // Serial fast path: no pool, no locking; same results by construction.
    for (size_t i = 0; i < configs.size(); ++i) {
      reports[i] = RunExperiment(configs[i]);
      if (on_complete) {
        on_complete(i, reports[i]);
      }
    }
    return reports;
  }
  ThreadPool pool(threads);
  std::mutex observer_mutex;
  for (size_t i = 0; i < configs.size(); ++i) {
    pool.Submit([&, i] {
      reports[i] = RunExperiment(configs[i]);
      if (on_complete) {
        const std::lock_guard<std::mutex> lock(observer_mutex);
        on_complete(i, reports[i]);
      }
    });
  }
  pool.Wait();
  return reports;
}

}  // namespace tpftl
