// Zipf-distributed sampling over [0, n).
//
// Used by the synthetic workload generator to model temporal locality: a
// small set of logical pages receives most accesses, with skew controlled by
// the exponent theta (theta = 0 is uniform; enterprise OLTP traces are
// commonly fit with theta in [0.8, 1.2]).
//
// Implementation: Hörmann's rejection-inversion method ("Rejection-inversion
// to generate variates from monotone discrete distributions", 1996), which
// samples in O(1) per draw without precomputing the n-term harmonic table.

#ifndef SRC_UTIL_ZIPF_H_
#define SRC_UTIL_ZIPF_H_

#include <cstdint>

#include "src/util/rng.h"

namespace tpftl {

class ZipfGenerator {
 public:
  // Distribution over {0, 1, ..., n - 1} with P(k) proportional to
  // 1 / (k + 1)^theta. Requires n >= 1 and theta >= 0.
  ZipfGenerator(uint64_t n, double theta);

  uint64_t Sample(Rng& rng) const;

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  double H(double x) const;
  double HInverse(double x) const;

  uint64_t n_ = 1;
  double theta_ = 0.0;
  // Precomputed constants of the rejection-inversion scheme.
  double h_x1_ = 0.0;
  double h_n_ = 0.0;
  double s_ = 0.0;
};

}  // namespace tpftl

#endif  // SRC_UTIL_ZIPF_H_
