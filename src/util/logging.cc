#include "src/util/logging.h"

#include <cstdio>

namespace tpftl {
namespace {

LogLevel g_level = LogLevel::kWarning;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() { return g_level; }

void SetLogLevel(LogLevel level) { g_level = level; }

namespace internal {

void LogLine(LogLevel level, const std::string& message) {
  std::fprintf(stderr, "[%s] %s\n", LevelName(level), message.c_str());
}

}  // namespace internal
}  // namespace tpftl
