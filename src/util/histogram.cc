#include "src/util/histogram.h"

#include <algorithm>

#include "src/util/assert.h"

namespace tpftl {

Histogram::Histogram(size_t max_value) : buckets_(max_value + 1, 0) {}

void Histogram::Add(uint64_t value) {
  if (value >= buckets_.size()) {
    ++overflow_;
  }
  const size_t idx = std::min<uint64_t>(value, buckets_.size() - 1);
  ++buckets_[idx];
  ++total_;
  sum_ += static_cast<double>(value);
}

void Histogram::Merge(const Histogram& other) {
  TPFTL_CHECK(buckets_.size() == other.buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  total_ += other.total_;
  overflow_ += other.overflow_;
  sum_ += other.sum_;
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  total_ = 0;
  overflow_ = 0;
  sum_ = 0.0;
}

uint64_t Histogram::CountAt(size_t value) const {
  TPFTL_CHECK(value < buckets_.size());
  return buckets_[value];
}

double Histogram::CdfAt(uint64_t v) const {
  if (total_ == 0) {
    return 0.0;
  }
  uint64_t acc = 0;
  const size_t cap = std::min<uint64_t>(v, buckets_.size() - 1);
  for (size_t i = 0; i <= cap; ++i) {
    acc += buckets_[i];
  }
  return static_cast<double>(acc) / static_cast<double>(total_);
}

uint64_t Histogram::Quantile(double q) const {
  TPFTL_CHECK(q >= 0.0 && q <= 1.0);
  if (total_ == 0) {
    return 0;
  }
  const auto target = static_cast<uint64_t>(q * static_cast<double>(total_));
  uint64_t acc = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    acc += buckets_[i];
    if (acc >= target && acc > 0) {
      return i;
    }
  }
  return buckets_.size() - 1;
}

double Histogram::Mean() const {
  return total_ > 0 ? sum_ / static_cast<double>(total_) : 0.0;
}

}  // namespace tpftl
