#include "src/util/str.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace tpftl {

std::vector<std::string_view> Split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin])) != 0) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1])) != 0) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::optional<uint64_t> ParseU64(std::string_view s) {
  s = Trim(s);
  if (s.empty()) {
    return std::nullopt;
  }
  uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    return std::nullopt;
  }
  return value;
}

std::optional<int64_t> ParseI64(std::string_view s) {
  s = Trim(s);
  if (s.empty()) {
    return std::nullopt;
  }
  int64_t value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    return std::nullopt;
  }
  return value;
}

std::optional<double> ParseDouble(std::string_view s) {
  s = Trim(s);
  if (s.empty()) {
    return std::nullopt;
  }
  // std::from_chars for double is available in libstdc++ >= 11.
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    return std::nullopt;
  }
  return value;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string FormatBytes(uint64_t bytes) {
  static constexpr const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < sizeof(kUnits) / sizeof(kUnits[0])) {
    value /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (value == std::floor(value)) {
    std::snprintf(buf, sizeof(buf), "%.0f %s", value, kUnits[unit]);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", value, kUnits[unit]);
  }
  return buf;
}

std::string FormatDouble(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

}  // namespace tpftl
