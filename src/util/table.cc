#include "src/util/table.h"

#include <algorithm>
#include <iomanip>

#include "src/util/assert.h"
#include "src/util/str.h"

namespace tpftl {

void Table::SetColumns(std::vector<std::string> headers) { headers_ = std::move(headers); }

void Table::AddRow(std::vector<std::string> cells) {
  TPFTL_CHECK_MSG(cells.size() == headers_.size(), "row arity must match headers");
  rows_.push_back(std::move(cells));
}

void Table::AddWarning(std::string warning) { warnings_.push_back(std::move(warning)); }

void Table::AddRow(const std::string& label, const std::vector<double>& values, int decimals) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (const double v : values) {
    cells.push_back(FormatDouble(v, decimals));
  }
  AddRow(std::move(cells));
}

void Table::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  os << "== " << title_ << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      if (c == 0) {
        os << std::left << std::setw(static_cast<int>(widths[c])) << cells[c];
      } else {
        os << std::right << std::setw(static_cast<int>(widths[c])) << cells[c];
      }
    }
    os << "\n";
  };
  emit_row(headers_);
  size_t total = headers_.size() - 1;  // separators
  for (const size_t w : widths) {
    total += w + 1;
  }
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) {
    emit_row(row);
  }
  for (const auto& warning : warnings_) {
    os << "WARNING: " << warning << "\n";
  }
  os << "\n";
}

void Table::PrintCsv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) {
        os << ",";
      }
      os << cells[c];
    }
    os << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) {
    emit(row);
  }
  for (const auto& warning : warnings_) {
    os << "# WARNING: " << warning << "\n";
  }
}

}  // namespace tpftl
