// Deterministic pseudo-random number generation.
//
// Experiments must be reproducible bit-for-bit across runs, so every random
// decision in the repository flows through Rng seeded explicitly by the
// caller. The core generator is xoshiro256** (Blackman & Vigna), seeded via
// SplitMix64 so that small integer seeds produce well-mixed state.

#ifndef SRC_UTIL_RNG_H_
#define SRC_UTIL_RNG_H_

#include <cstdint>

#include "src/util/assert.h"

namespace tpftl {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    // SplitMix64 expansion of the seed into the 256-bit state.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  // Next 64 uniformly random bits.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). bound must be positive.
  uint64_t Below(uint64_t bound) {
    TPFTL_DCHECK(bound > 0);
    // Lemire's multiply-shift rejection method: unbiased and fast.
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<uint64_t>(m);
    if (low < bound) {
      const uint64_t threshold = -bound % bound;
      while (low < threshold) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  // Uniform integer in [lo, hi] inclusive.
  uint64_t Range(uint64_t lo, uint64_t hi) {
    TPFTL_DCHECK(lo <= hi);
    return lo + Below(hi - lo + 1);
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  // Bernoulli trial with success probability p.
  bool Chance(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace tpftl

#endif  // SRC_UTIL_RNG_H_
