// Small string utilities shared by the trace parsers and table printer.

#ifndef SRC_UTIL_STR_H_
#define SRC_UTIL_STR_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace tpftl {

// Splits on a single delimiter; empty fields are preserved.
std::vector<std::string_view> Split(std::string_view s, char delim);

// Allocation-free forward cursor over the delimiter-separated fields of one
// record. Field semantics match Split() — empty fields are preserved and a
// non-empty input always yields at least one field — but the fields are
// walked in place instead of materialized into a vector, which is what the
// trace parsers' inner loops want (Split's per-line vector dominated their
// profile).
class FieldCursor {
 public:
  FieldCursor(std::string_view record, char delim) : rest_(record), delim_(delim) {}

  // Fills `*field` with the next field and returns true, or returns false
  // once all fields have been produced.
  bool Next(std::string_view* field) {
    if (done_) {
      return false;
    }
    const size_t pos = rest_.find(delim_);
    if (pos == std::string_view::npos) {
      *field = rest_;
      done_ = true;
      return true;
    }
    *field = rest_.substr(0, pos);
    rest_.remove_prefix(pos + 1);
    return true;
  }

  // Advances past `count` fields; false if the record ran out first.
  bool Skip(size_t count) {
    std::string_view ignored;
    while (count-- > 0) {
      if (!Next(&ignored)) {
        return false;
      }
    }
    return true;
  }

 private:
  std::string_view rest_;
  char delim_;
  bool done_ = false;
};

// Allocation-free cursor over the '\n'-separated lines of a buffer. Every
// segment is produced, including the (possibly empty) final segment of a
// buffer ending in '\n' — callers skip blank lines themselves. Completely
// empty input yields no lines.
class LineCursor {
 public:
  explicit LineCursor(std::string_view text) : rest_(text) {}

  bool Next(std::string_view* line) {
    if (done_) {
      return false;
    }
    const size_t pos = rest_.find('\n');
    if (pos == std::string_view::npos) {
      *line = rest_;
      done_ = true;
      return !line->empty() || produced_;
    }
    *line = rest_.substr(0, pos);
    rest_.remove_prefix(pos + 1);
    produced_ = true;
    return true;
  }

 private:
  std::string_view rest_;
  bool done_ = false;
  bool produced_ = false;
};

// Removes leading/trailing whitespace (space, tab, CR, LF).
std::string_view Trim(std::string_view s);

// Strict decimal parses; reject empty strings, trailing junk, and overflow.
std::optional<uint64_t> ParseU64(std::string_view s);
std::optional<int64_t> ParseI64(std::string_view s);
std::optional<double> ParseDouble(std::string_view s);

// ASCII case-insensitive comparison.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

// Human-readable byte size ("512 MiB", "8.5 KiB").
std::string FormatBytes(uint64_t bytes);

// Fixed-point formatting helper ("12.34").
std::string FormatDouble(double v, int decimals);

}  // namespace tpftl

#endif  // SRC_UTIL_STR_H_
