// Small string utilities shared by the trace parsers and table printer.

#ifndef SRC_UTIL_STR_H_
#define SRC_UTIL_STR_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace tpftl {

// Splits on a single delimiter; empty fields are preserved.
std::vector<std::string_view> Split(std::string_view s, char delim);

// Removes leading/trailing whitespace (space, tab, CR, LF).
std::string_view Trim(std::string_view s);

// Strict decimal parses; reject empty strings, trailing junk, and overflow.
std::optional<uint64_t> ParseU64(std::string_view s);
std::optional<int64_t> ParseI64(std::string_view s);
std::optional<double> ParseDouble(std::string_view s);

// ASCII case-insensitive comparison.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

// Human-readable byte size ("512 MiB", "8.5 KiB").
std::string FormatBytes(uint64_t bytes);

// Fixed-point formatting helper ("12.34").
std::string FormatDouble(double v, int decimals);

}  // namespace tpftl

#endif  // SRC_UTIL_STR_H_
