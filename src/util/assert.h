// Checked assertions for library invariants.
//
// TPFTL_CHECK fires in every build type; TPFTL_DCHECK only when NDEBUG is not
// defined. Both abort the process: a failed check is a programming error, and
// library code does not throw (see DESIGN.md, "No exceptions in library code").

#ifndef SRC_UTIL_ASSERT_H_
#define SRC_UTIL_ASSERT_H_

#include <cstdio>
#include <cstdlib>

namespace tpftl::internal {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               msg[0] != '\0' ? " — " : "", msg);
  std::abort();
}

}  // namespace tpftl::internal

#define TPFTL_CHECK(cond)                                               \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::tpftl::internal::CheckFailed(#cond, __FILE__, __LINE__, "");    \
    }                                                                   \
  } while (0)

#define TPFTL_CHECK_MSG(cond, msg)                                      \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::tpftl::internal::CheckFailed(#cond, __FILE__, __LINE__, (msg)); \
    }                                                                   \
  } while (0)

#ifdef NDEBUG
#define TPFTL_DCHECK(cond) \
  do {                     \
  } while (0)
#else
#define TPFTL_DCHECK(cond) TPFTL_CHECK(cond)
#endif

#endif  // SRC_UTIL_ASSERT_H_
