// Checked assertions for library invariants.
//
// TPFTL_CHECK fires in every build type; TPFTL_DCHECK fires when interior
// checks are compiled in (debug builds, or any build configured with
// -DTPFTL_HARDENED=ON — see the top-level CMakeLists). Both abort the
// process: a failed check is a programming error, and library code does not
// throw (see DESIGN.md, "No exceptions in library code").
//
// Per-page-operation bounds and state checks on the simulator's hot path
// (flash page program/invalidate/read, block-manager bookkeeping) use
// TPFTL_DCHECK so release replays are branch-light; CI and sanitizer builds
// enable TPFTL_HARDENED to get them back. Rare, per-block, or configuration
// checks stay TPFTL_CHECK. Tests that provoke interior checks on purpose
// (death tests) gate themselves on TPFTL_DCHECK_IS_ON.

#ifndef SRC_UTIL_ASSERT_H_
#define SRC_UTIL_ASSERT_H_

#include <cstdio>
#include <cstdlib>

namespace tpftl::internal {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               msg[0] != '\0' ? " — " : "", msg);
  std::abort();
}

}  // namespace tpftl::internal

#define TPFTL_CHECK(cond)                                               \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::tpftl::internal::CheckFailed(#cond, __FILE__, __LINE__, "");    \
    }                                                                   \
  } while (0)

#define TPFTL_CHECK_MSG(cond, msg)                                      \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::tpftl::internal::CheckFailed(#cond, __FILE__, __LINE__, (msg)); \
    }                                                                   \
  } while (0)

#if defined(TPFTL_HARDENED) || !defined(NDEBUG)
#define TPFTL_DCHECK_IS_ON 1
#define TPFTL_DCHECK(cond) TPFTL_CHECK(cond)
#define TPFTL_DCHECK_MSG(cond, msg) TPFTL_CHECK_MSG(cond, msg)
#else
#define TPFTL_DCHECK_IS_ON 0
#define TPFTL_DCHECK(cond) \
  do {                     \
  } while (0)
#define TPFTL_DCHECK_MSG(cond, msg) \
  do {                              \
  } while (0)
#endif

#endif  // SRC_UTIL_ASSERT_H_
