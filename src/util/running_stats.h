// Streaming mean/variance/min/max accumulator (Welford's algorithm).

#ifndef SRC_UTIL_RUNNING_STATS_H_
#define SRC_UTIL_RUNNING_STATS_H_

#include <cmath>
#include <cstdint>
#include <limits>

namespace tpftl {

class RunningStats {
 public:
  void Add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_) {
      min_ = x;
    }
    if (x > max_) {
      max_ = x;
    }
    sum_ += x;
  }

  void Reset() { *this = RunningStats(); }

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double variance() const { return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace tpftl

#endif  // SRC_UTIL_RUNNING_STATS_H_
