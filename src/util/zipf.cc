#include "src/util/zipf.h"

#include <cmath>

#include "src/util/assert.h"

namespace tpftl {
namespace {

// exp(x) - 1 evaluated accurately near zero.
double ExpM1(double x) { return std::expm1(x); }

// log(1 + x) evaluated accurately near zero.
double Log1P(double x) { return std::log1p(x); }

}  // namespace

ZipfGenerator::ZipfGenerator(uint64_t n, double theta) : n_(n), theta_(theta) {
  TPFTL_CHECK(n >= 1);
  TPFTL_CHECK(theta >= 0.0);
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n) + 0.5);
  s_ = 2.0 - HInverse(H(2.5) - std::pow(2.0, -theta_));
}

// H(x) = integral of 1/t^theta dt, the continuous analogue of the harmonic
// partial sums. For theta == 1 it degenerates to log(x).
double ZipfGenerator::H(double x) const {
  const double log_x = std::log(x);
  if (theta_ == 1.0) {
    return log_x;
  }
  return ExpM1((1.0 - theta_) * log_x) / (1.0 - theta_);
}

double ZipfGenerator::HInverse(double x) const {
  if (theta_ == 1.0) {
    return std::exp(x);
  }
  return std::exp(Log1P(x * (1.0 - theta_)) / (1.0 - theta_));
}

uint64_t ZipfGenerator::Sample(Rng& rng) const {
  if (n_ == 1) {
    return 0;
  }
  while (true) {
    const double u = h_n_ + rng.NextDouble() * (h_x1_ - h_n_);
    const double x = HInverse(u);
    auto k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) {
      k = 1;
    } else if (k > n_) {
      k = n_;
    }
    const double kd = static_cast<double>(k);
    if (kd - x <= s_ || u >= H(kd + 0.5) - std::exp(-theta_ * std::log(kd))) {
      return k - 1;  // Shift to zero-based rank.
    }
  }
}

}  // namespace tpftl
