// Materialize-on-write segmented array for TB-scale sparse devices.
//
// A SegmentedArray<T> presents a flat array of `size` elements, all equal to
// a default value, but allocates backing storage in fixed power-of-two
// segments only when a segment is first written with a non-default value.
// NandFlash uses it for the per-page OOB arrays and the persisted-mapping
// mirror: a 1 TB device has hundreds of millions of pages, but a bounded
// workload touches a tiny fraction of them, so the resident set stays
// proportional to the written footprint instead of the virtual capacity
// (ROADMAP item 2; the resident-segment count is exported as a gauge).
//
// Two layouts, chosen at construction:
//   * segment_size == 0 — dense: one eagerly allocated segment covering the
//     whole array. Reads and writes are a single indirection, so the replay
//     hot path (PR 2) keeps its flat-array behavior on normal geometries.
//   * segment_size == 1 << k — sparse: a table of lazily allocated segments.
//     Writing the default value into an unmaterialized segment is a no-op,
//     and Span() over an unmaterialized segment serves a shared all-default
//     segment, so read-mostly consumers never force allocation.
//
// Deep-copyable on purpose: the power-cut snapshot (NandFlash) clones the
// device state, and only materialized segments cost memory or copy time.

#ifndef SRC_UTIL_SEGMENTED_ARRAY_H_
#define SRC_UTIL_SEGMENTED_ARRAY_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/util/assert.h"

namespace tpftl {

template <typename T>
class SegmentedArray {
 public:
  // Empty dense array; assign a sized one before use.
  SegmentedArray() : SegmentedArray(0, T{}) {}

  // `segment_size` must be 0 (dense) or a power of two. All `size` elements
  // start equal to `init`.
  SegmentedArray(uint64_t size, T init, uint64_t segment_size = 0)
      : size_(size), init_(init) {
    if (segment_size == 0) {
      segment_size_ = size > 0 ? size : 1;
      shift_ = 0;  // Unused in dense mode.
      segments_.resize(1);
      segments_[0] = std::make_unique<std::vector<T>>(size_, init_);
      dense_ = segments_[0]->data();
      return;
    }
    TPFTL_CHECK_MSG((segment_size & (segment_size - 1)) == 0,
                    "segment size must be a power of two");
    segment_size_ = segment_size;
    shift_ = 0;
    while ((uint64_t{1} << shift_) < segment_size) {
      ++shift_;
    }
    segments_.resize((size + segment_size - 1) / segment_size);
    default_segment_.assign(segment_size_, init_);
  }

  SegmentedArray(const SegmentedArray& other)
      : size_(other.size_),
        init_(other.init_),
        segment_size_(other.segment_size_),
        shift_(other.shift_),
        default_segment_(other.default_segment_) {
    segments_.resize(other.segments_.size());
    for (size_t s = 0; s < segments_.size(); ++s) {
      if (other.segments_[s] != nullptr) {
        segments_[s] = std::make_unique<std::vector<T>>(*other.segments_[s]);
      }
    }
    if (other.dense_ != nullptr) {
      dense_ = segments_[0]->data();
    }
  }

  SegmentedArray& operator=(const SegmentedArray& other) {
    if (this != &other) {
      SegmentedArray copy(other);
      *this = std::move(copy);
    }
    return *this;
  }
  SegmentedArray(SegmentedArray&&) noexcept = default;
  SegmentedArray& operator=(SegmentedArray&&) noexcept = default;

  uint64_t size() const { return size_; }

  T Get(uint64_t i) const {
    TPFTL_DCHECK(i < size_);
    if (dense_ != nullptr) [[likely]] {
      return dense_[i];
    }
    const auto& seg = segments_[i >> shift_];
    return seg == nullptr ? init_ : (*seg)[i & (segment_size_ - 1)];
  }

  void Set(uint64_t i, T value) {
    TPFTL_DCHECK(i < size_);
    if (dense_ != nullptr) [[likely]] {
      dense_[i] = value;
      return;
    }
    auto& seg = segments_[i >> shift_];
    if (seg == nullptr) {
      if (value == init_) {
        return;  // Writing the default never materializes a segment.
      }
      seg = std::make_unique<std::vector<T>>(segment_size_, init_);
    }
    (*seg)[i & (segment_size_ - 1)] = value;
  }

  // Contiguous read-only view of [start, start + count). The range must not
  // cross a segment boundary; an unmaterialized range serves the shared
  // all-default segment without allocating.
  const T* Span(uint64_t start, [[maybe_unused]] uint64_t count) const {
    TPFTL_DCHECK(start + count <= size_);
    if (dense_ != nullptr) [[likely]] {
      return dense_ + start;
    }
    const uint64_t offset = start & (segment_size_ - 1);
    TPFTL_DCHECK_MSG(offset + count <= segment_size_, "span crosses a segment boundary");
    const auto& seg = segments_[start >> shift_];
    return seg == nullptr ? default_segment_.data() + offset : seg->data() + offset;
  }

  bool dense() const { return dense_ != nullptr; }
  uint64_t segment_size() const { return segment_size_; }
  uint64_t total_segments() const { return segments_.size(); }
  uint64_t materialized_segments() const {
    uint64_t n = 0;
    for (const auto& seg : segments_) {
      n += seg != nullptr ? 1 : 0;
    }
    return n;
  }

  // True when the segment holding element `i` is materialized (always true
  // in dense mode). Elements of unmaterialized segments equal the default,
  // so consumers can skip whole default-valued ranges without reading them.
  bool MaterializedAt(uint64_t i) const {
    TPFTL_DCHECK(i < size_);
    return dense_ != nullptr || segments_[i >> shift_] != nullptr;
  }

  // Index of the next materialized segment at or after `from` (dense mode:
  // segment 0 covers everything). total_segments() when none. Lets sparse
  // consumers (recovery, digests) skip untouched capacity.
  uint64_t NextMaterializedSegment(uint64_t from) const {
    for (uint64_t s = from; s < segments_.size(); ++s) {
      if (segments_[s] != nullptr) {
        return s;
      }
    }
    return segments_.size();
  }

 private:
  uint64_t size_ = 0;
  T init_{};
  uint64_t segment_size_ = 0;
  uint32_t shift_ = 0;
  T* dense_ = nullptr;  // Fast path: set iff dense mode (single eager segment).
  std::vector<std::unique_ptr<std::vector<T>>> segments_;
  std::vector<T> default_segment_;  // Shared backing for unmaterialized spans.
};

}  // namespace tpftl

#endif  // SRC_UTIL_SEGMENTED_ARRAY_H_
