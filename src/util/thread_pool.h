// Fixed-size worker pool for embarrassingly parallel experiment execution.
//
// Each simulated SSD is fully self-contained (explicitly seeded RNGs, no
// globals), so independent ExperimentConfigs can run concurrently with
// bit-identical results to serial execution. The pool is deliberately
// minimal: submit closures, then Wait() for quiescence. Tasks must not
// throw (the simulator aborts on invariant violations instead).

#ifndef SRC_UTIL_THREAD_POOL_H_
#define SRC_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tpftl {

class ThreadPool {
 public:
  // threads == 0 → std::thread::hardware_concurrency() (at least 1).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void Submit(std::function<void()> task);

  // Blocks until every submitted task has finished. The pool is reusable
  // afterwards.
  void Wait();

  unsigned thread_count() const { return static_cast<unsigned>(workers_.size()); }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t in_flight_ = 0;  // Queued + currently executing.
  bool stop_ = false;
};

}  // namespace tpftl

#endif  // SRC_UTIL_THREAD_POOL_H_
