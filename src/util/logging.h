// Minimal leveled logger.
//
// The simulator is deterministic and single-threaded; logging exists for
// debugging experiments, not for production telemetry, so the implementation
// favors zero setup: a process-global level and an ostream sink (stderr by
// default).

#ifndef SRC_UTIL_LOGGING_H_
#define SRC_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace tpftl {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

// Returns/sets the global threshold; messages below it are dropped.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

// Emits one formatted line ("[LEVEL] message") to the sink.
void LogLine(LogLevel level, const std::string& message);

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage() {
    if (level_ >= GetLogLevel()) {
      LogLine(level_, stream_.str());
    }
  }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (level_ >= GetLogLevel()) {
      stream_ << value;
    }
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace tpftl

#define TPFTL_LOG(level) ::tpftl::internal::LogMessage(::tpftl::LogLevel::level)

#endif  // SRC_UTIL_LOGGING_H_
