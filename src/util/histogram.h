// Integer-valued histogram with CDF extraction.
//
// Used by the Figure 1 reproduction (distribution of cached entries / dirty
// entries per translation page). Response-time quantiles moved to the
// sub-bucketed obs::LatencyHistogram (src/obs/latency_histogram.h), which
// replaced the log2-bucketed LogHistogram that used to live here — its
// Quantile returned bucket upper bounds, overstating tail latencies.

#ifndef SRC_UTIL_HISTOGRAM_H_
#define SRC_UTIL_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tpftl {

// Exact counts for small non-negative integer values; values beyond the
// configured cap are clamped into the final bucket. Clamped samples are
// counted in overflow() — check it before trusting the CDF tail.
class Histogram {
 public:
  explicit Histogram(size_t max_value = 1024);

  void Add(uint64_t value);
  void Merge(const Histogram& other);
  void Reset();

  uint64_t total() const { return total_; }
  // Samples that exceeded max_value and were clamped into the cap bucket.
  // When non-zero, CdfAt/Quantile understate the tail.
  uint64_t overflow() const { return overflow_; }
  // Count of samples with exactly this value (cap bucket aggregates the tail).
  uint64_t CountAt(size_t value) const;
  // Fraction of samples with value <= v (0 when empty).
  double CdfAt(uint64_t v) const;
  // Smallest value v such that CdfAt(v) >= q, for q in [0, 1].
  uint64_t Quantile(double q) const;
  double Mean() const;
  size_t max_value() const { return buckets_.size() - 1; }

 private:
  std::vector<uint64_t> buckets_;
  uint64_t total_ = 0;
  uint64_t overflow_ = 0;
  double sum_ = 0.0;
};

}  // namespace tpftl

#endif  // SRC_UTIL_HISTOGRAM_H_
