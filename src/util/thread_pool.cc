#include "src/util/thread_pool.h"

#include <algorithm>
#include <utility>

namespace tpftl {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stop_ set and queue drained.
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) {
        all_done_.notify_all();
      }
    }
  }
}

}  // namespace tpftl
