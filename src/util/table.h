// Fixed-width console table and CSV emitter.
//
// Every bench binary reports its figure/table through this class so the
// output format is uniform: a titled, aligned console table plus an optional
// CSV dump for plotting.

#ifndef SRC_UTIL_TABLE_H_
#define SRC_UTIL_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace tpftl {

class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  void SetColumns(std::vector<std::string> headers);

  // Row cells are formatted by the caller; AddRow checks arity.
  void AddRow(std::vector<std::string> cells);

  // Convenience: first cell is a label, the rest are doubles.
  void AddRow(const std::string& label, const std::vector<double>& values, int decimals = 3);

  size_t row_count() const { return rows_.size(); }
  const std::string& title() const { return title_; }

  // Data-quality caveat shown with the table: printed under the console
  // rendering and as a trailing "# WARNING: ..." comment line in the CSV.
  // Use for conditions that silently distort the numbers (e.g. histogram
  // overflow flattening a CDF tail).
  void AddWarning(std::string warning);
  const std::vector<std::string>& warnings() const { return warnings_; }

  // Aligned human-readable rendering.
  void Print(std::ostream& os) const;
  // RFC-4180-ish CSV (no quoting needed for our cell contents).
  void PrintCsv(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::string> warnings_;
};

}  // namespace tpftl

#endif  // SRC_UTIL_TABLE_H_
