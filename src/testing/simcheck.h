// SimCheck — deterministic simulation checking for every FTL flavor.
//
// RunSchedule drives one FTL through a schedule of host ops (schedule.h) in
// a miniature world (world.h), with injected program/erase faults and
// mid-stream power cuts followed by OOB-scan recovery, while the oracle
// (sim_model.h) cross-checks a linearized reference model against the FTL's
// mapping and the device's accounting after every step. Everything derives
// from (kind, profile, seed, ops): the same quadruple always reaches the
// same verdict, down to the failing step and message — which is what lets a
// shrunk repro (shrink.h, repro.h) replay bit-identically in
// examples/simcheck_replay.cpp or from a CI artifact.
//
// Power-cut semantics: a kPowerCut op arms a cut a few device ops in the
// future, so the cut tears whatever flash operation is in flight — a host
// write, a GC migration, a translation writeback, a write-buffer flush.
// When it fires, the device is rolled back to the cut instant
// (NandFlash::RestoreToCutInstant), the crashed FTL and the volatile write
// buffer are discarded, and a fresh FTL recovers from the surviving flash.
// Every schedule op fully completed before the cut must survive; only the
// LPNs the in-flight op touched are indeterminate (the model resynchronizes
// those from the recovered truth and keeps checking).

#ifndef SRC_TESTING_SIMCHECK_H_
#define SRC_TESTING_SIMCHECK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/ftl_factory.h"
#include "src/testing/schedule.h"

namespace tpftl::simcheck {

struct SimResult {
  bool ok = true;
  uint64_t failed_step = 0;  // Index into the op list (valid when !ok).
  std::string message;       // Divergence description ("" when ok).
  uint64_t steps_executed = 0;
  uint64_t power_cuts = 0;   // Cuts that actually fired.
  uint64_t recoveries = 0;   // Successful recovery boots.
  uint64_t deep_checks = 0;
  uint64_t final_digest = 0; // StateDigest at run end (0 on failure).
};

// Executes `ops` against a fresh world. Deterministic; never throws. `seed`
// drives the fault-plan RNG streams (schedule generation uses the same seed
// upstream but an independent stream).
SimResult RunSchedule(FtlKind kind, const SimProfile& profile, uint64_t seed,
                      const std::vector<SimOp>& ops);

// Page-mapped FTLs get the strict oracle (winner + exact population); the
// block-mapped baselines legitimately keep superseded copies valid
// mid-merge and are checked with the relaxed variant.
bool StrictOracleFor(FtlKind kind);

// Convenience entry for tests and the replay CLI: generate, run, and on
// failure shrink to a minimal repro and (when `repro_dir` is non-empty)
// serialize it to `<repro_dir>/<profile>_<ftl>_<seed>.simcheck`.
struct CheckOutcome {
  SimResult result;               // Verdict of the full generated schedule.
  SimResult shrunk_result;        // Verdict of the minimized ops (when !ok).
  std::vector<SimOp> shrunk_ops;  // Minimal failing subsequence (when !ok).
  std::string repro_path;         // Written repro file ("" when none).
};
CheckOutcome CheckFtl(FtlKind kind, const SimProfile& profile, uint64_t seed,
                      uint64_t num_ops, const std::string& repro_dir = "");

}  // namespace tpftl::simcheck

#endif  // SRC_TESTING_SIMCHECK_H_
