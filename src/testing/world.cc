#include "src/testing/world.h"

#include "src/util/rng.h"

namespace tpftl::testing {

FlashGeometry SmallGeometry(uint64_t total_blocks, uint64_t dies) {
  FlashGeometry g;
  g.page_size_bytes = 512;
  g.pages_per_block = 16;
  g.total_blocks = total_blocks;
  g.dies_per_channel = static_cast<uint32_t>(dies);
  return g;
}

World MakeWorld(uint64_t logical_pages, uint64_t cache_bytes, uint64_t total_blocks,
                uint64_t gc_threshold, uint64_t dies, uint64_t max_erase_cycles) {
  World w;
  w.geometry = SmallGeometry(total_blocks, dies);
  w.geometry.max_erase_cycles = max_erase_cycles;
  w.flash = std::make_unique<NandFlash>(w.geometry);
  w.env.flash = w.flash.get();
  w.env.logical_pages = logical_pages;
  w.env.cache_bytes = cache_bytes;
  w.env.gc_threshold = gc_threshold;
  return w;
}

std::unordered_map<Lpn, bool> DriveRandomOps(Ftl& ftl, uint64_t logical_pages,
                                             uint64_t ops, double write_ratio,
                                             uint64_t seed) {
  Rng rng(seed);
  std::unordered_map<Lpn, bool> written;
  for (uint64_t i = 0; i < ops; ++i) {
    const Lpn lpn = rng.Below(logical_pages);
    if (rng.Chance(write_ratio)) {
      ftl.WritePage(lpn);
      written[lpn] = true;
    } else {
      ftl.ReadPage(lpn);
    }
  }
  return written;
}

}  // namespace tpftl::testing
