#include "src/testing/simcheck.h"

#include <memory>
#include <sstream>
#include <utility>

#include "src/flash/fault.h"
#include "src/ssd/write_buffer.h"
#include "src/testing/repro.h"
#include "src/testing/shrink.h"
#include "src/testing/sim_model.h"
#include "src/testing/world.h"

namespace tpftl::simcheck {

bool StrictOracleFor(FtlKind kind) {
  return kind != FtlKind::kBlockFtl && kind != FtlKind::kFast;
}

namespace {

// One live run: world + FTL + optional write buffer + model + verdict.
class Harness {
 public:
  Harness(FtlKind kind, const SimProfile& profile, uint64_t seed)
      : kind_(kind),
        profile_(profile),
        seed_(seed),
        world_(testing::MakeWorld(profile.logical_pages, profile.cache_bytes,
                                  profile.total_blocks, profile.gc_threshold,
                                  profile.dies, profile.max_erase_cycles)),
        model_(profile.logical_pages),
        strict_(StrictOracleFor(kind)) {
    if (profile_.checkpoint_interval != 0) {
      world_.env.checkpoint.enabled = true;
      world_.env.checkpoint.interval_host_ops = profile_.checkpoint_interval;
    }
    world_.env.data_streams = static_cast<uint32_t>(profile_.data_streams);
    world_.env.dynamic_leveling = profile_.dynamic_leveling;
    world_.env.static_leveling = profile_.static_leveling;
    world_.env.static_level_threshold = profile_.static_level_threshold;
    ftl_ = CreateFtl(kind_, world_.env);
    ArmSabotage();
    InstallEnvPlan(FaultPlan::kNoPowerCut);
    ResetBuffer();
  }

  SimResult Run(const std::vector<SimOp>& ops) {
    for (uint64_t step = 0; step < ops.size(); ++step) {
      touched_.clear();
      Execute(ops[step]);
      if (world_.flash->power_cut_triggered()) {
        // The cut fired during this step's flash work; everything this step
        // touched is indeterminate, everything before it must survive.
        if (!RecoverFromCut(step)) {
          return std::move(result_);
        }
        ++result_.steps_executed;
        continue;
      }
      for (const Lpn lpn : touched_) {
        if (!Report(step, ops[step],
                    CheckTouched(*ftl_, *world_.flash, model_, lpn, strict_))) {
          return std::move(result_);
        }
      }
      ++result_.steps_executed;
      if (profile_.deep_check_interval != 0 &&
          (step + 1) % profile_.deep_check_interval == 0) {
        ++result_.deep_checks;
        if (!Report(step, ops[step],
                    CheckDeep(*ftl_, *world_.flash, model_, strict_, strict_))) {
          return std::move(result_);
        }
      }
    }
    // Closing sweep, then the determinism digest.
    ++result_.deep_checks;
    if (!ops.empty() &&
        !Report(ops.size() - 1, ops.back(),
                CheckDeep(*ftl_, *world_.flash, model_, strict_, strict_))) {
      return std::move(result_);
    }
    result_.final_digest = StateDigest(*ftl_, *world_.flash, profile_.logical_pages);
    return std::move(result_);
  }

 private:
  void ArmSabotage() {
    if (profile_.sabotage_drop_commit_lpn != kInvalidLpn) {
      ftl_->TestOnlySabotageDropCommits(profile_.sabotage_drop_commit_lpn);
    }
  }

  void ResetBuffer() {
    WriteBufferConfig cfg;
    cfg.capacity_pages = profile_.write_buffer_pages;
    buffer_ = std::make_unique<WriteBuffer>(cfg);
  }

  // (Re-)installs the profile's fault environment, optionally with a power
  // cut armed at absolute device op `cut_at`. Each install draws a fresh
  // deterministic RNG stream so post-recovery faults don't replay the
  // pre-cut sequence.
  void InstallEnvPlan(uint64_t cut_at) {
    const bool faulty =
        profile_.program_fail_prob > 0.0 || profile_.erase_fail_prob > 0.0;
    if (!faulty && cut_at == FaultPlan::kNoPowerCut) {
      return;
    }
    FaultPlan plan;
    plan.seed = seed_ * 0x9E3779B97F4A7C15ULL + ++plan_epoch_;
    plan.program_fail_prob = profile_.program_fail_prob;
    plan.erase_fail_prob = profile_.erase_fail_prob;
    plan.power_cut_at_op = cut_at;
    world_.flash->InstallFaultPlan(plan);
  }

  // Submits one write to the FTL and mirrors it in the model.
  void WriteToFtl(Lpn lpn) {
    ftl_->WritePage(lpn);
    model_.SetMapped(lpn, true);
    touched_.push_back(lpn);
  }

  void Execute(const SimOp& op) {
    // Check-before-mutate (Ftl::worn_out): once the device reaches end of
    // life, mutating ops are dropped — the model sees neither side, so the
    // oracle keeps holding the frozen mapping to the durable history. Reads
    // stay live (and stay checked) on a worn device.
    if (ftl_->worn_out() && op.kind != OpKind::kRead &&
        op.kind != OpKind::kPowerCut) {
      return;
    }
    switch (op.kind) {
      case OpKind::kWrite:
        if (buffer_->enabled()) {
          const Lpn evicted = buffer_->PutWrite(op.lpn);
          if (evicted != kInvalidLpn) {
            WriteToFtl(evicted);
          }
        } else {
          WriteToFtl(op.lpn);
        }
        break;
      case OpKind::kRead: {
        if (buffer_->enabled() && buffer_->ServeRead(op.lpn)) {
          break;  // RAM hit — the FTL never sees it.
        }
        ftl_->ReadPage(op.lpn);
        touched_.push_back(op.lpn);
        if (buffer_->enabled() && !ftl_->worn_out()) {
          const Lpn evicted = buffer_->AdmitClean(op.lpn);
          if (evicted != kInvalidLpn) {
            WriteToFtl(evicted);
          }
        }
        break;
      }
      case OpKind::kTrim:
        if (buffer_->enabled()) {
          buffer_->Discard(op.lpn);
        }
        ftl_->TrimPage(op.lpn);
        model_.SetMapped(op.lpn, false);
        touched_.push_back(op.lpn);
        break;
      case OpKind::kFlush:
        if (buffer_->enabled()) {
          for (const Lpn lpn : buffer_->DrainDirty()) {
            WriteToFtl(lpn);
          }
        }
        break;
      case OpKind::kBgcTick:
        ftl_->BackgroundGc(static_cast<MicroSec>(op.arg));
        break;
      case OpKind::kPowerCut:
        InstallEnvPlan(world_.flash->op_index() + 1 + op.arg);
        break;
    }
  }

  // Restores the flash to the cut instant, boots a recovered FTL and checks
  // it against the durable model. Returns false when the run has failed.
  bool RecoverFromCut(uint64_t step) {
    ++result_.power_cuts;
    world_.flash->RestoreToCutInstant();
    ftl_.reset();  // The crashed FTL's RAM dies with the power.
    world_.env.recover_from_flash = true;
    ftl_ = CreateFtl(kind_, world_.env);
    world_.env.recover_from_flash = false;
    ArmSabotage();
    InstallEnvPlan(FaultPlan::kNoPowerCut);
    ResetBuffer();  // Buffered dirty pages are volatile and are gone.

    if (ftl_->recovery_report() == nullptr) {
      return Report(step, SimOp{OpKind::kPowerCut, 0, 0},
                    "recovered FTL reports no RecoveryReport");
    }

    // The in-flight step's LPNs may have landed either side of the cut:
    // resynchronize the model from the recovered truth for exactly those,
    // then hold every other LPN to the durable history.
    for (const Lpn lpn : touched_) {
      model_.SetMapped(lpn, ftl_->Probe(lpn) != kInvalidPpn);
    }
    std::string msg = CheckDeep(*ftl_, *world_.flash, model_, strict_, strict_);
    if (msg.empty()) {
      ++result_.recoveries;
      return true;
    }
    return Report(step, SimOp{OpKind::kPowerCut, 0, 0},
                  "post-recovery divergence: " + msg);
  }

  // Records a verdict; returns true when the run may continue.
  bool Report(uint64_t step, const SimOp& op, std::string msg) {
    if (msg.empty()) {
      return true;
    }
    std::ostringstream out;
    out << "step " << step << " (" << OpKindName(op.kind);
    if (op.kind == OpKind::kRead || op.kind == OpKind::kWrite ||
        op.kind == OpKind::kTrim) {
      out << " lpn " << op.lpn;
    }
    out << "): " << msg;
    result_.ok = false;
    result_.failed_step = step;
    result_.message = out.str();
    return false;
  }

  FtlKind kind_;
  SimProfile profile_;
  uint64_t seed_;
  testing::World world_;
  std::unique_ptr<Ftl> ftl_;
  std::unique_ptr<WriteBuffer> buffer_;
  SimModel model_;
  bool strict_;
  uint64_t plan_epoch_ = 0;
  std::vector<Lpn> touched_;
  SimResult result_;
};

}  // namespace

SimResult RunSchedule(FtlKind kind, const SimProfile& profile, uint64_t seed,
                      const std::vector<SimOp>& ops) {
  Harness harness(kind, profile, seed);
  return harness.Run(ops);
}

CheckOutcome CheckFtl(FtlKind kind, const SimProfile& profile, uint64_t seed,
                      uint64_t num_ops, const std::string& repro_dir) {
  CheckOutcome outcome;
  const std::vector<SimOp> ops = GenerateSchedule(profile, seed, num_ops);
  outcome.result = RunSchedule(kind, profile, seed, ops);
  if (outcome.result.ok) {
    return outcome;
  }
  ShrinkResult shrunk = ShrinkSchedule(kind, profile, seed, ops);
  outcome.shrunk_ops = std::move(shrunk.ops);
  outcome.shrunk_result = std::move(shrunk.failure);
  if (!repro_dir.empty()) {
    Repro repro;
    repro.kind = kind;
    repro.profile = profile;
    repro.seed = seed;
    repro.ops = outcome.shrunk_ops;
    std::ostringstream path;
    path << repro_dir << "/" << profile.name << "_" << FtlKindName(kind) << "_"
         << seed << ".simcheck";
    if (WriteReproFile(path.str(), repro)) {
      outcome.repro_path = path.str();
    }
  }
  return outcome;
}

}  // namespace tpftl::simcheck
