#include "src/testing/schedule.h"

#include <algorithm>

#include "src/util/assert.h"
#include "src/util/rng.h"

namespace tpftl::simcheck {

SimProfile ProfileByName(const std::string& name) {
  SimProfile p;
  p.name = name;
  if (name == "plain") {
    return p;
  }
  if (name == "faulty") {
    p.program_fail_prob = 0.01;
    p.erase_fail_prob = 0.002;
    return p;
  }
  if (name == "powercut") {
    p.program_fail_prob = 0.005;
    p.erase_fail_prob = 0.001;
    p.power_cut_prob = 0.002;
    p.write_buffer_pages = 12;
    p.flush_prob = 0.03;
    return p;
  }
  if (name == "buffered") {
    p.write_buffer_pages = 16;
    p.flush_prob = 0.04;
    return p;
  }
  if (name == "parallel") {
    // The powercut environment on a 4-die device: striping, per-die
    // timelines, faults, buffered writes, and recovery all interleave.
    p.dies = 4;
    p.program_fail_prob = 0.005;
    p.erase_fail_prob = 0.001;
    p.power_cut_prob = 0.002;
    p.write_buffer_pages = 12;
    p.flush_prob = 0.03;
    return p;
  }
  if (name == "checkpointed") {
    // The powercut environment with checkpointed recovery enabled on a short
    // cadence: checkpoint/journal meta appends are frequent enough that the
    // randomly armed cuts tear them, not just the data-path programs.
    p.program_fail_prob = 0.005;
    p.erase_fail_prob = 0.001;
    p.power_cut_prob = 0.002;
    p.write_buffer_pages = 12;
    p.flush_prob = 0.03;
    p.checkpoint_interval = 40;
    return p;
  }
  if (name == "aging") {
    // High-churn traffic (skewed toward a small hot set) on a device whose
    // blocks retire after a handful of erases, with hot/cold streams and
    // both wear-leveling modes on. Faults and power cuts included, so
    // recovery has to rebuild stream actives and wear state on a device
    // that already lost blocks. No write buffer: once the device is worn
    // the harness stops mutating, and a buffer would hide that boundary.
    p.program_fail_prob = 0.005;
    p.erase_fail_prob = 0.001;
    p.power_cut_prob = 0.002;
    p.hot_fraction = 0.15;
    p.hot_prob = 0.8;
    p.max_erase_cycles = 8;
    p.data_streams = 2;
    p.dynamic_leveling = true;
    p.static_leveling = true;
    p.static_level_threshold = 4;
    return p;
  }
  TPFTL_CHECK_MSG(false, "unknown SimCheck profile");
  return p;
}

std::vector<std::string> ProfileNames() {
  return {"plain",    "faulty",       "powercut", "buffered",
          "parallel", "checkpointed", "aging"};
}

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kRead:
      return "read";
    case OpKind::kWrite:
      return "write";
    case OpKind::kTrim:
      return "trim";
    case OpKind::kFlush:
      return "flush";
    case OpKind::kBgcTick:
      return "bgc";
    case OpKind::kPowerCut:
      return "powercut";
  }
  return "?";
}

std::vector<SimOp> GenerateSchedule(const SimProfile& profile, uint64_t seed,
                                    uint64_t num_ops) {
  // Distinct stream from the runner's fault-plan seeds (simcheck.cc mixes
  // with a different constant).
  Rng rng(seed ^ 0x5C4ED01EULL);
  const uint64_t hot_pages =
      std::max<uint64_t>(1, static_cast<uint64_t>(
                                static_cast<double>(profile.logical_pages) *
                                profile.hot_fraction));
  auto pick_lpn = [&]() -> Lpn {
    if (rng.Chance(profile.hot_prob)) {
      return rng.Below(hot_pages);
    }
    return rng.Below(profile.logical_pages);
  };

  std::vector<SimOp> ops;
  ops.reserve(num_ops);
  bool emitted_cut = false;
  for (uint64_t i = 0; i < num_ops; ++i) {
    SimOp op;
    const double dice = rng.NextDouble();
    double acc = profile.write_prob;
    if (dice < acc) {
      op.kind = OpKind::kWrite;
      op.lpn = pick_lpn();
    } else if (dice < (acc += profile.trim_prob)) {
      op.kind = OpKind::kTrim;
      op.lpn = pick_lpn();
    } else if (dice < (acc += profile.flush_prob)) {
      op.kind = OpKind::kFlush;
    } else if (dice < (acc += profile.bgc_prob)) {
      op.kind = OpKind::kBgcTick;
      op.arg = profile.bgc_budget_us;
    } else if (dice < (acc += profile.power_cut_prob)) {
      op.kind = OpKind::kPowerCut;
      op.arg = rng.Below(std::max<uint64_t>(1, profile.power_cut_max_delta));
      emitted_cut = true;
    } else {
      op.kind = OpKind::kRead;
      op.lpn = pick_lpn();
    }
    ops.push_back(op);
  }

  // Power-cut profiles must actually cut: force one into the first half so
  // plenty of traffic follows to trigger and then exercise the recovered FTL.
  if (profile.power_cut_prob > 0.0 && !emitted_cut && num_ops >= 8) {
    SimOp op;
    op.kind = OpKind::kPowerCut;
    op.arg = rng.Below(std::max<uint64_t>(1, profile.power_cut_max_delta));
    ops[num_ops / 4 + rng.Below(num_ops / 4)] = op;
  }
  return ops;
}

}  // namespace tpftl::simcheck
