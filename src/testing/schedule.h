// SimCheck operation schedules: the op alphabet, the tunable profile that
// shapes a run (world geometry, op mix, fault environment, write buffer),
// and the seeded generator that turns a profile into a concrete op list.
//
// A schedule is a flat vector of SimOp — no inter-op dependencies — so the
// shrinker (shrink.h) can delete arbitrary subsequences and the remainder is
// still a well-formed schedule. Everything is deterministic: the same
// (profile, seed, num_ops) triple always yields the same op list, and the
// runner (simcheck.h) derives all of its own randomness (fault plans) from
// the same seed.

#ifndef SRC_TESTING_SCHEDULE_H_
#define SRC_TESTING_SCHEDULE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/flash/types.h"

namespace tpftl::simcheck {

enum class OpKind : uint8_t {
  kRead = 0,   // Host read of `lpn` (through the write buffer when present).
  kWrite,      // Host write of `lpn`.
  kTrim,       // TRIM/deallocate of `lpn`.
  kFlush,      // Drain every dirty write-buffer page to the FTL (no-op bare).
  kBgcTick,    // Idle-time BackgroundGc with `arg` µs of budget.
  kPowerCut,   // Arm a power cut `arg`+1 device ops in the future; the run
               // continues until the cut fires, then recovers a fresh FTL.
};

struct SimOp {
  OpKind kind = OpKind::kRead;
  Lpn lpn = 0;        // kRead / kWrite / kTrim.
  uint64_t arg = 0;   // kBgcTick: budget µs; kPowerCut: extra op delay.
};

// Everything that shapes one SimCheck world and workload. All fields ride
// in the .simcheck repro file (repro.h), so a repro replays in the exact
// environment that produced it.
struct SimProfile {
  std::string name = "plain";

  // --- world shape (src/testing/world.h small geometry) ---
  uint64_t logical_pages = 1024;
  uint64_t cache_bytes = 32 + 280;
  uint64_t total_blocks = 96;
  uint64_t gc_threshold = 6;
  // Dies in the small geometry (power of two; total_blocks must divide
  // evenly). 1 reproduces the flat device; the "parallel" profile raises it
  // so striping and per-die timelines run under the model-checking oracle.
  uint64_t dies = 1;

  // --- op mix (probabilities per op slot; the remainder becomes reads) ---
  double write_prob = 0.55;
  double trim_prob = 0.06;
  double flush_prob = 0.0;
  double bgc_prob = 0.03;
  double power_cut_prob = 0.0;
  uint64_t bgc_budget_us = 4000;
  // A generated cut op arms the cut 1..power_cut_max_delta device ops ahead,
  // so it tears programs mid-GC and mid-writeback, not just between host ops.
  uint64_t power_cut_max_delta = 24;

  // --- address skew: a hot subset absorbs most of the traffic ---
  double hot_fraction = 0.25;  // Fraction of the logical space that is hot.
  double hot_prob = 0.6;       // Probability an op lands in the hot set.

  // --- fault environment (flash/fault.h, probabilities per device op) ---
  double program_fail_prob = 0.0;
  double erase_fail_prob = 0.0;

  // --- CFLRU write buffer in front of the FTL (0 = none). Buffered dirty
  // pages are volatile: a power cut loses them, and the model knows it. ---
  uint64_t write_buffer_pages = 0;

  // Checkpointed recovery (src/ftl/checkpoint.h): 0 = disabled, otherwise the
  // checkpoint cadence in host ops. Meta appends count as device ops, so the
  // armed power cuts land inside checkpoint persistence and journal appends,
  // not just between them.
  uint64_t checkpoint_interval = 0;

  // --- device aging (flash/nand.h erase budget + FtlEnv stream/leveling
  // knobs). All default off so pre-aging repro files replay byte-identically.
  // A non-zero erase budget retires worn blocks as bad; once the FTL reports
  // worn_out() the harness stops issuing mutating ops (check-before-mutate),
  // matching how a host treats a device at end of life. ---
  uint64_t max_erase_cycles = 0;
  uint64_t data_streams = 1;
  bool dynamic_leveling = false;
  bool static_leveling = false;
  uint64_t static_level_threshold = 64;

  // Full-state sweep (every LPN + device accounting) every this many steps;
  // the touched-LPN oracle runs after every step regardless.
  uint64_t deep_check_interval = 64;

  // Test-only sabotage (Ftl::TestOnlySabotageDropCommits): validates that
  // the oracle catches a dropped mapping commit. kInvalidLpn = off.
  Lpn sabotage_drop_commit_lpn = kInvalidLpn;
};

// The named schedule profiles the ctest entry sweeps. Unknown names
// CHECK-fail.
//   plain    — reads/writes/trims/background GC, no faults.
//   faulty   — plain plus injected program and erase failures.
//   powercut — faulty plus mid-stream power cuts with recovery, behind a
//              small CFLRU write buffer (flush ops included).
//   buffered — plain behind the write buffer, fault-free.
//   parallel — powercut's fault/buffer environment on a 4-die geometry, so
//              per-die striping and timelines face faults and recovery too.
//   checkpointed — powercut's environment with checkpointed recovery on and
//              a short cadence, so cuts tear checkpoint appends themselves.
//   aging    — high-churn faulty/powercut traffic on a device with a small
//              per-block erase budget, hot/cold streams, and both leveling
//              modes on: blocks wear out and retire mid-run, recovery boots
//              on a device with bad blocks, and the run may reach end of
//              life (the harness then stops mutating).
SimProfile ProfileByName(const std::string& name);
std::vector<std::string> ProfileNames();

// Deterministic schedule of `num_ops` ops. When the profile asks for power
// cuts, at least one kPowerCut op is guaranteed in the first half of the
// schedule (probability alone could miss, and the power-cut profiles exist
// to exercise recovery).
std::vector<SimOp> GenerateSchedule(const SimProfile& profile, uint64_t seed,
                                    uint64_t num_ops);

const char* OpKindName(OpKind kind);

}  // namespace tpftl::simcheck

#endif  // SRC_TESTING_SCHEDULE_H_
