#include "src/testing/repro.h"

#include <fstream>
#include <sstream>

namespace tpftl::simcheck {

namespace {

char OpCode(OpKind kind) {
  switch (kind) {
    case OpKind::kRead:
      return 'r';
    case OpKind::kWrite:
      return 'w';
    case OpKind::kTrim:
      return 't';
    case OpKind::kFlush:
      return 'f';
    case OpKind::kBgcTick:
      return 'g';
    case OpKind::kPowerCut:
      return 'p';
  }
  return '?';
}

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) {
    *error = message;
  }
  return false;
}

}  // namespace

std::string SerializeRepro(const Repro& repro) {
  const SimProfile& p = repro.profile;
  std::ostringstream out;
  out << "simcheck v1\n";
  out << "ftl " << FtlKindName(repro.kind) << "\n";
  out << "profile " << p.name << "\n";
  out << "seed " << repro.seed << "\n";
  out << "logical_pages " << p.logical_pages << "\n";
  out << "cache_bytes " << p.cache_bytes << "\n";
  out << "total_blocks " << p.total_blocks << "\n";
  out << "gc_threshold " << p.gc_threshold << "\n";
  if (p.dies != 1) {
    // Written only for multi-die profiles so pre-parallel repro files stay
    // byte-identical; absent key parses as the flat single-die default.
    out << "dies " << p.dies << "\n";
  }
  out << "program_fail_prob " << p.program_fail_prob << "\n";
  out << "erase_fail_prob " << p.erase_fail_prob << "\n";
  out << "write_buffer_pages " << p.write_buffer_pages << "\n";
  if (p.checkpoint_interval != 0) {
    // Written only when checkpointing is on so older repro files stay
    // byte-identical; absent key parses as disabled.
    out << "checkpoint_interval " << p.checkpoint_interval << "\n";
  }
  if (p.max_erase_cycles != 0) {
    // Aging knobs are written only when set so pre-aging repro files stay
    // byte-identical; absent keys parse as the unlimited/single-stream
    // defaults.
    out << "max_erase_cycles " << p.max_erase_cycles << "\n";
  }
  if (p.data_streams != 1) {
    out << "data_streams " << p.data_streams << "\n";
  }
  if (p.dynamic_leveling) {
    out << "dynamic_leveling 1\n";
  }
  if (p.static_leveling) {
    out << "static_leveling 1\n";
    out << "static_level_threshold " << p.static_level_threshold << "\n";
  }
  out << "deep_check_interval " << p.deep_check_interval << "\n";
  if (p.sabotage_drop_commit_lpn != kInvalidLpn) {
    out << "sabotage_drop_commit_lpn " << p.sabotage_drop_commit_lpn << "\n";
  }
  out << "ops " << repro.ops.size() << "\n";
  for (const SimOp& op : repro.ops) {
    out << OpCode(op.kind);
    switch (op.kind) {
      case OpKind::kRead:
      case OpKind::kWrite:
      case OpKind::kTrim:
        out << " " << op.lpn;
        break;
      case OpKind::kBgcTick:
      case OpKind::kPowerCut:
        out << " " << op.arg;
        break;
      case OpKind::kFlush:
        break;
    }
    out << "\n";
  }
  out << "end\n";
  return out.str();
}

bool ParseRepro(const std::string& text, Repro* out, std::string* error) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "simcheck v1") {
    return Fail(error, "missing 'simcheck v1' header");
  }
  Repro repro;
  // The profile starts from defaults; the header's name does NOT re-derive
  // mix probabilities — a repro replays its recorded ops, not the generator.
  bool saw_ops = false;
  uint64_t op_count = 0;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "end") {
      return Fail(error, "'end' before the ops block");
    }
    if (key == "ops") {
      if (!(fields >> op_count)) {
        return Fail(error, "malformed ops count");
      }
      saw_ops = true;
      break;
    }
    SimProfile& p = repro.profile;
    bool ok = true;
    if (key == "ftl") {
      std::string name;
      fields >> name;
      const auto kind = FtlKindByName(name);
      if (!kind.has_value()) {
        return Fail(error, "unknown ftl '" + name + "'");
      }
      repro.kind = *kind;
    } else if (key == "profile") {
      ok = static_cast<bool>(fields >> p.name);
    } else if (key == "seed") {
      ok = static_cast<bool>(fields >> repro.seed);
    } else if (key == "logical_pages") {
      ok = static_cast<bool>(fields >> p.logical_pages);
    } else if (key == "cache_bytes") {
      ok = static_cast<bool>(fields >> p.cache_bytes);
    } else if (key == "total_blocks") {
      ok = static_cast<bool>(fields >> p.total_blocks);
    } else if (key == "gc_threshold") {
      ok = static_cast<bool>(fields >> p.gc_threshold);
    } else if (key == "dies") {
      ok = static_cast<bool>(fields >> p.dies);
    } else if (key == "program_fail_prob") {
      ok = static_cast<bool>(fields >> p.program_fail_prob);
    } else if (key == "erase_fail_prob") {
      ok = static_cast<bool>(fields >> p.erase_fail_prob);
    } else if (key == "write_buffer_pages") {
      ok = static_cast<bool>(fields >> p.write_buffer_pages);
    } else if (key == "checkpoint_interval") {
      ok = static_cast<bool>(fields >> p.checkpoint_interval);
    } else if (key == "max_erase_cycles") {
      ok = static_cast<bool>(fields >> p.max_erase_cycles);
    } else if (key == "data_streams") {
      ok = static_cast<bool>(fields >> p.data_streams);
    } else if (key == "dynamic_leveling") {
      int v = 0;
      ok = static_cast<bool>(fields >> v);
      p.dynamic_leveling = v != 0;
    } else if (key == "static_leveling") {
      int v = 0;
      ok = static_cast<bool>(fields >> v);
      p.static_leveling = v != 0;
    } else if (key == "static_level_threshold") {
      ok = static_cast<bool>(fields >> p.static_level_threshold);
    } else if (key == "deep_check_interval") {
      ok = static_cast<bool>(fields >> p.deep_check_interval);
    } else if (key == "sabotage_drop_commit_lpn") {
      ok = static_cast<bool>(fields >> p.sabotage_drop_commit_lpn);
    } else {
      return Fail(error, "unknown key '" + key + "'");
    }
    if (!ok) {
      return Fail(error, "malformed value for '" + key + "'");
    }
  }
  if (!saw_ops) {
    return Fail(error, "missing ops block");
  }
  repro.ops.reserve(op_count);
  for (uint64_t i = 0; i < op_count; ++i) {
    if (!std::getline(in, line)) {
      return Fail(error, "truncated ops block");
    }
    std::istringstream fields(line);
    std::string code;
    fields >> code;
    if (code.size() != 1) {
      return Fail(error, "malformed op line '" + line + "'");
    }
    SimOp op;
    switch (code[0]) {
      case 'r':
        op.kind = OpKind::kRead;
        break;
      case 'w':
        op.kind = OpKind::kWrite;
        break;
      case 't':
        op.kind = OpKind::kTrim;
        break;
      case 'f':
        op.kind = OpKind::kFlush;
        break;
      case 'g':
        op.kind = OpKind::kBgcTick;
        break;
      case 'p':
        op.kind = OpKind::kPowerCut;
        break;
      default:
        return Fail(error, "unknown op code '" + code + "'");
    }
    if (op.kind == OpKind::kRead || op.kind == OpKind::kWrite ||
        op.kind == OpKind::kTrim) {
      if (!(fields >> op.lpn)) {
        return Fail(error, "op line missing lpn: '" + line + "'");
      }
    } else if (op.kind == OpKind::kBgcTick || op.kind == OpKind::kPowerCut) {
      if (!(fields >> op.arg)) {
        return Fail(error, "op line missing arg: '" + line + "'");
      }
    }
    repro.ops.push_back(op);
  }
  if (!std::getline(in, line) || line != "end") {
    return Fail(error, "missing 'end' trailer");
  }
  *out = std::move(repro);
  return true;
}

bool WriteReproFile(const std::string& path, const Repro& repro) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << SerializeRepro(repro);
  return static_cast<bool>(out);
}

bool ReadReproFile(const std::string& path, Repro* out, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    return Fail(error, "cannot open '" + path + "'");
  }
  std::ostringstream text;
  text << in.rdbuf();
  return ParseRepro(text.str(), out, error);
}

}  // namespace tpftl::simcheck
