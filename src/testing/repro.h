// The .simcheck repro format: a failing (or interesting) SimCheck run,
// serialized so it replays verbatim anywhere — same FTL, same profile, same
// seed, same op list ⇒ bit-identical divergence point.
//
// Line-oriented text, one key per line, ops after the `ops` count line:
//
//   simcheck v1
//   ftl DFTL
//   profile powercut
//   seed 99
//   logical_pages 1024
//   ... (every SimProfile field that shapes the run)
//   ops 3
//   w 17
//   p 4
//   r 17
//   end
//
// Op lines: r/w/t <lpn>, f (flush), g <budget_us>, p <delta>. Unknown keys
// are rejected (a repro that silently ignored a field would not replay what
// it claims). Human-editable on purpose: bisecting a repro by hand is part
// of the debugging workflow (see EXPERIMENTS.md).

#ifndef SRC_TESTING_REPRO_H_
#define SRC_TESTING_REPRO_H_

#include <string>
#include <vector>

#include "src/core/ftl_factory.h"
#include "src/testing/schedule.h"

namespace tpftl::simcheck {

struct Repro {
  FtlKind kind = FtlKind::kDftl;
  SimProfile profile;
  uint64_t seed = 1;
  std::vector<SimOp> ops;
};

std::string SerializeRepro(const Repro& repro);
// Returns false and fills `error` on malformed input.
bool ParseRepro(const std::string& text, Repro* out, std::string* error);

bool WriteReproFile(const std::string& path, const Repro& repro);
bool ReadReproFile(const std::string& path, Repro* out, std::string* error);

}  // namespace tpftl::simcheck

#endif  // SRC_TESTING_REPRO_H_
