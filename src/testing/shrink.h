// Delta-debugging minimizer for failing SimCheck schedules.
//
// Classic ddmin over the op list: try dropping ever-finer chunks, keeping
// any reduction that still fails (re-running the full harness each time —
// determinism makes the predicate exact, not statistical), then a final
// one-op-at-a-time polish. Ops carry no inter-op references, so any
// subsequence is a well-formed schedule. The run budget bounds worst-case
// shrink cost; the minimized schedule and its verdict are returned together
// so the caller can serialize a repro that replays to the same divergence.

#ifndef SRC_TESTING_SHRINK_H_
#define SRC_TESTING_SHRINK_H_

#include <cstdint>
#include <vector>

#include "src/testing/simcheck.h"

namespace tpftl::simcheck {

struct ShrinkResult {
  std::vector<SimOp> ops;  // Minimal failing subsequence found.
  SimResult failure;       // Verdict of running exactly `ops`.
  uint64_t runs = 0;       // Harness executions spent shrinking.
};

// `ops` must fail under (kind, profile, seed); CHECK-fails otherwise.
ShrinkResult ShrinkSchedule(FtlKind kind, const SimProfile& profile, uint64_t seed,
                            const std::vector<SimOp>& ops, uint64_t max_runs = 2000);

}  // namespace tpftl::simcheck

#endif  // SRC_TESTING_SHRINK_H_
