// SimCheck's linearized reference model and oracle checks.
//
// The model is deliberately tiny: per LPN, whether the last operation the
// FTL acknowledged was a write (mapped) or a trim/nothing (unmapped). The
// simulator carries no page payload, so "contents" reduce to mapping
// presence — but the oracle cross-checks presence against the *physical*
// truth on every step:
//
//   touched-LPN check (every step, O(total pages) for the winner scan):
//     * mapped  ⇒ Probe() valid, OOB kind kData, OOB tag == lpn, and — for
//       page-mapped FTLs — the mapping points at the LPN's *winner*, the
//       newest valid copy by OOB sequence number (a dropped or stale commit
//       leaves the mapping on an older page and is caught here);
//     * unmapped ⇒ Probe() == kInvalidPpn (a resurrected trim or a ghost
//       mapping is caught here).
//
//   deep check (every deep_check_interval steps and at run end):
//     * the touched-LPN oracle over the whole logical space, plus no two
//       LPNs sharing a physical page;
//     * NandFlash accounting: per-page states recounted against per-block
//       valid counters, and the valid data-page population compared to the
//       model's mapped population (equal for page-mapped FTLs, bounded
//       below for the block-mapped baselines, which may keep superseded
//       copies valid until a merge);
//     * Ftl::CheckInvariants() — the FTL's own structural self-check
//       (BlockManager buckets, wear histogram, free-list disjointness).
//
// Block-mapped FTLs (BlockFTL, FAST) get the relaxed variant of the winner
// and population checks — a log block legitimately holds the newest copy
// while an older home-block copy is still valid mid-merge.
//
// Checks return a human-readable divergence message ("" = consistent);
// SimCheck turns the first non-empty message into the run's verdict.

#ifndef SRC_TESTING_SIM_MODEL_H_
#define SRC_TESTING_SIM_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/flash/nand.h"
#include "src/ftl/ftl.h"

namespace tpftl::simcheck {

class SimModel {
 public:
  explicit SimModel(uint64_t logical_pages)
      : mapped_(logical_pages, 0) {}

  uint64_t logical_pages() const { return mapped_.size(); }

  void SetMapped(Lpn lpn, bool mapped) {
    mapped_count_ += static_cast<uint64_t>(mapped) - mapped_[lpn];
    mapped_[lpn] = mapped ? 1 : 0;
  }
  bool mapped(Lpn lpn) const { return mapped_[lpn] != 0; }
  uint64_t mapped_count() const { return mapped_count_; }

 private:
  std::vector<uint8_t> mapped_;
  uint64_t mapped_count_ = 0;
};

// Per-step oracle for one LPN. `strict_winner` enables the newest-copy check
// (page-mapped FTLs).
std::string CheckTouched(const Ftl& ftl, const NandFlash& flash, const SimModel& model,
                         Lpn lpn, bool strict_winner);

// Full sweep: every LPN through the touched oracle plus uniqueness,
// population and device-accounting invariants and the FTL's self-check.
// `strict_population` additionally requires valid-data-page count ==
// mapped count (page-mapped FTLs).
std::string CheckDeep(const Ftl& ftl, const NandFlash& flash, const SimModel& model,
                      bool strict_winner, bool strict_population);

// FNV-1a digest of the full logical→physical view plus flash op counters;
// two runs of the same schedule must produce identical digests.
uint64_t StateDigest(const Ftl& ftl, const NandFlash& flash, uint64_t logical_pages);

}  // namespace tpftl::simcheck

#endif  // SRC_TESTING_SIM_MODEL_H_
