#include "src/testing/shrink.h"

#include <algorithm>

#include "src/util/assert.h"

namespace tpftl::simcheck {

namespace {

std::vector<SimOp> WithoutRange(const std::vector<SimOp>& ops, uint64_t begin,
                                uint64_t end) {
  std::vector<SimOp> out;
  out.reserve(ops.size() - (end - begin));
  out.insert(out.end(), ops.begin(), ops.begin() + static_cast<ptrdiff_t>(begin));
  out.insert(out.end(), ops.begin() + static_cast<ptrdiff_t>(end), ops.end());
  return out;
}

}  // namespace

ShrinkResult ShrinkSchedule(FtlKind kind, const SimProfile& profile, uint64_t seed,
                            const std::vector<SimOp>& ops, uint64_t max_runs) {
  ShrinkResult r;
  r.ops = ops;
  r.failure = RunSchedule(kind, profile, seed, ops);
  ++r.runs;
  TPFTL_CHECK_MSG(!r.failure.ok, "ShrinkSchedule needs a failing schedule");

  // Attempts to replace the current schedule with `candidate`; keeps it when
  // it still fails. Returns whether the reduction held.
  auto try_reduce = [&](std::vector<SimOp> candidate) {
    if (r.runs >= max_runs) {
      return false;
    }
    SimResult verdict = RunSchedule(kind, profile, seed, candidate);
    ++r.runs;
    if (verdict.ok) {
      return false;
    }
    r.ops = std::move(candidate);
    r.failure = std::move(verdict);
    return true;
  };

  // ddmin: delete chunks, halving the chunk size whenever a full sweep at
  // the current granularity removes nothing.
  uint64_t chunk = std::max<uint64_t>(1, r.ops.size() / 2);
  while (r.runs < max_runs) {
    bool reduced = false;
    for (uint64_t begin = 0; begin < r.ops.size() && r.runs < max_runs;) {
      const uint64_t end = std::min<uint64_t>(begin + chunk, r.ops.size());
      if (try_reduce(WithoutRange(r.ops, begin, end))) {
        reduced = true;  // The tail shifted into [begin, ...): retry there.
      } else {
        begin = end;
      }
    }
    if (chunk == 1 && !reduced) {
      break;  // One-op polish swept clean — minimal under this predicate.
    }
    if (!reduced) {
      chunk = std::max<uint64_t>(1, chunk / 2);
    }
  }
  return r;
}

}  // namespace tpftl::simcheck
