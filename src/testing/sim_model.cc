#include "src/testing/sim_model.h"

#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace tpftl::simcheck {

namespace {

// Newest valid data page carrying `lpn`, by OOB sequence number.
Ppn WinnerOf(const NandFlash& flash, Lpn lpn) {
  const FlashGeometry& g = flash.geometry();
  Ppn winner = kInvalidPpn;
  uint64_t best_seq = 0;
  for (Ppn ppn = 0; ppn < g.total_pages(); ++ppn) {
    if (flash.StateOf(ppn) != PageState::kValid ||
        flash.OobKindOf(ppn) != OobKind::kData ||
        flash.OobTag(ppn) != lpn) {
      continue;
    }
    const uint64_t seq = flash.OobSeq(ppn);
    if (seq > best_seq) {
      best_seq = seq;
      winner = ppn;
    }
  }
  return winner;
}

std::string CheckOne(const Ftl& ftl, const NandFlash& flash, const SimModel& model,
                     Lpn lpn, bool strict_winner, Ppn winner_hint, bool have_hint) {
  const Ppn ppn = ftl.Probe(lpn);
  std::ostringstream out;
  if (!model.mapped(lpn)) {
    if (ppn != kInvalidPpn) {
      out << "ghost mapping: lpn " << lpn << " should be unmapped but probes to ppn "
          << ppn;
      return out.str();
    }
    return "";
  }
  if (ppn == kInvalidPpn) {
    out << "lost mapping: lpn " << lpn << " was written but probes unmapped";
    return out.str();
  }
  if (flash.StateOf(ppn) != PageState::kValid) {
    out << "dangling mapping: lpn " << lpn << " probes to non-valid ppn " << ppn;
    return out.str();
  }
  if (flash.OobKindOf(ppn) != OobKind::kData) {
    out << "kind confusion: lpn " << lpn << " probes to non-data ppn " << ppn;
    return out.str();
  }
  if (flash.OobTag(ppn) != lpn) {
    out << "tag mismatch: lpn " << lpn << " probes to ppn " << ppn << " tagged "
        << flash.OobTag(ppn);
    return out.str();
  }
  if (strict_winner) {
    const Ppn winner = have_hint ? winner_hint : WinnerOf(flash, lpn);
    if (ppn != winner) {
      out << "stale mapping: lpn " << lpn << " probes to ppn " << ppn
          << " (seq " << flash.OobSeq(ppn) << ") but the newest valid copy is ppn "
          << winner << " (seq " << (winner == kInvalidPpn ? 0 : flash.OobSeq(winner))
          << ")";
      return out.str();
    }
  }
  return "";
}

}  // namespace

std::string CheckTouched(const Ftl& ftl, const NandFlash& flash, const SimModel& model,
                         Lpn lpn, bool strict_winner) {
  return CheckOne(ftl, flash, model, lpn, strict_winner, kInvalidPpn,
                  /*have_hint=*/false);
}

std::string CheckDeep(const Ftl& ftl, const NandFlash& flash, const SimModel& model,
                      bool strict_winner, bool strict_population) {
  const FlashGeometry& g = flash.geometry();
  std::ostringstream out;

  // One physical pass: recount per-block states against the block counters,
  // collect per-LPN winners and the valid data-page population.
  std::unordered_map<Lpn, Ppn> winners;
  std::unordered_map<Lpn, uint64_t> winner_seq;
  uint64_t valid_data_pages = 0;
  for (BlockId b = 0; b < g.total_blocks; ++b) {
    uint64_t valid = 0;
    uint64_t programmed = 0;
    for (uint64_t off = 0; off < g.pages_per_block; ++off) {
      const Ppn ppn = g.PpnOf(b, off);
      const PageState state = flash.StateOf(ppn);
      if (state != PageState::kFree) {
        ++programmed;
      }
      if (state != PageState::kValid) {
        continue;
      }
      ++valid;
      if (flash.OobKindOf(ppn) != OobKind::kData) {
        continue;
      }
      ++valid_data_pages;
      const uint64_t seq = flash.OobSeq(ppn);
      if (seq == 0) {
        out << "valid data page with torn OOB: ppn " << ppn;
        return out.str();
      }
      const auto lpn = static_cast<Lpn>(flash.OobTag(ppn));
      if (lpn >= model.logical_pages()) {
        out << "corrupt OOB tag " << lpn << " on valid ppn " << ppn;
        return out.str();
      }
      if (seq > winner_seq[lpn]) {
        winner_seq[lpn] = seq;
        winners[lpn] = ppn;
      }
    }
    const Block view = flash.block(b);
    const uint64_t counted_programmed = g.pages_per_block - view.free_pages();
    if (view.valid_pages() != valid || counted_programmed != programmed) {
      out << "block accounting drift: block " << b << " counters say "
          << view.valid_pages() << " valid / " << counted_programmed
          << " programmed, recount says " << valid << " / " << programmed;
      return out.str();
    }
  }

  // One logical pass through the touched oracle plus physical-page
  // uniqueness.
  std::unordered_set<Ppn> seen;
  for (Lpn lpn = 0; lpn < model.logical_pages(); ++lpn) {
    const auto it = winners.find(lpn);
    std::string msg = CheckOne(ftl, flash, model, lpn, strict_winner,
                               it == winners.end() ? kInvalidPpn : it->second,
                               /*have_hint=*/true);
    if (!msg.empty()) {
      return msg;
    }
    const Ppn ppn = ftl.Probe(lpn);
    if (ppn != kInvalidPpn && !seen.insert(ppn).second) {
      out << "aliased mapping: ppn " << ppn << " mapped by two LPNs (second: " << lpn
          << ")";
      return out.str();
    }
  }

  if (valid_data_pages < model.mapped_count() ||
      (strict_population && valid_data_pages != model.mapped_count())) {
    out << "population drift: " << valid_data_pages << " valid data pages vs "
        << model.mapped_count() << " mapped LPNs";
    return out.str();
  }

  if (!ftl.CheckInvariants()) {
    return "Ftl::CheckInvariants failed";
  }
  return "";
}

uint64_t StateDigest(const Ftl& ftl, const NandFlash& flash, uint64_t logical_pages) {
  uint64_t h = 0xCBF29CE484222325ULL;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xFF;
      h *= 0x100000001B3ULL;
    }
  };
  for (Lpn lpn = 0; lpn < logical_pages; ++lpn) {
    mix(ftl.Probe(lpn));
  }
  mix(flash.stats().page_reads);
  mix(flash.stats().page_writes);
  mix(flash.stats().block_erases);
  mix(flash.TotalEraseCount());
  return h;
}

}  // namespace tpftl::simcheck
