// Shared test/checking fixtures: a miniature flash world small enough for
// exhaustive checking, plus a shadow-mapped random-operation driver used by
// the consistency suites. Lives in the tpftl_testing library together with
// the SimCheck harness (simcheck.h) so every suite builds its worlds the
// same way.

#ifndef SRC_TESTING_WORLD_H_
#define SRC_TESTING_WORLD_H_

#include <memory>
#include <unordered_map>

#include "src/flash/geometry.h"
#include "src/flash/nand.h"
#include "src/ftl/demand_ftl.h"
#include "src/ftl/ftl.h"

namespace tpftl::testing {

// A small geometry: 512 B pages (128 entries per translation page), 16-page
// blocks. Dynamics (multi-translation-page working sets, frequent GC) show
// up within a few thousand operations. `dies` > 1 (a power of two dividing
// total_blocks) makes it a multi-die device with per-die timelines.
FlashGeometry SmallGeometry(uint64_t total_blocks = 96, uint64_t dies = 1);

// A world bundles flash + env for one FTL under test.
struct World {
  FlashGeometry geometry;
  std::unique_ptr<NandFlash> flash;
  FtlEnv env;
};

// `max_erase_cycles` is the per-block endurance budget baked into the
// geometry (0 = unlimited); stream/leveling knobs ride on the returned env.
World MakeWorld(uint64_t logical_pages = 1024, uint64_t cache_bytes = 2048,
                uint64_t total_blocks = 96, uint64_t gc_threshold = 6,
                uint64_t dies = 1, uint64_t max_erase_cycles = 0);

// Drives `ftl` with `ops` random page reads/writes (write probability
// `write_ratio`) while mirroring every write into a shadow map, verifying
// after each operation that Probe() agrees with the shadow map for the
// touched page. Returns the shadow map for final full-table verification.
std::unordered_map<Lpn, bool> DriveRandomOps(Ftl& ftl, uint64_t logical_pages,
                                             uint64_t ops, double write_ratio,
                                             uint64_t seed);

}  // namespace tpftl::testing

#endif  // SRC_TESTING_WORLD_H_
