// Quickstart: build a TPFTL-backed SSD, issue host I/O, read the statistics.
//
//   $ ./quickstart
//
// Walks through the public API in five steps: configure the device, write,
// read, inspect the mapping, and print the §5 metrics for the little run.

#include <cstdio>

#include "src/ssd/ssd.h"
#include "src/util/str.h"

int main() {
  using namespace tpftl;

  // 1. Configure a 64 MB SSD managed by TPFTL with the paper's default
  //    mapping-cache budget (block-level table + GTD = capacity/128 of the
  //    full page-level table).
  SsdConfig config;
  config.logical_bytes = 64ULL << 20;
  config.ftl_kind = FtlKind::kTpftl;
  Ssd ssd(config);
  std::printf("SSD: %s logical, %llu flash blocks, mapping cache %s\n",
              FormatBytes(config.logical_bytes).c_str(),
              static_cast<unsigned long long>(ssd.geometry().total_blocks),
              FormatBytes(ssd.cache_bytes()).c_str());

  // 2. Write a 64 KB sequential burst at offset 1 MB.
  IoRequest write;
  write.offset_bytes = 1ULL << 20;
  write.size_bytes = 64 * 1024;
  write.kind = IoKind::kWrite;
  write.arrival_us = 0.0;
  const MicroSec write_response = ssd.Submit(write);
  std::printf("wrote %s in %.0f us (%llu page programs)\n", FormatBytes(write.size_bytes).c_str(),
              write_response,
              static_cast<unsigned long long>(ssd.ftl().stats().host_page_writes));

  // 3. Read it back — the mapping entries are now cached, so translation is
  //    free and only the data page reads cost time.
  IoRequest read = write;
  read.kind = IoKind::kRead;
  read.arrival_us = 1e6;
  const MicroSec read_response = ssd.Submit(read);
  std::printf("read it back in %.0f us (hit ratio so far: %.1f%%)\n", read_response,
              100.0 * ssd.ftl().stats().hit_ratio());

  // 4. Inspect a mapping directly.
  const Lpn lpn = write.offset_bytes / ssd.geometry().page_size_bytes;
  const Ppn ppn = ssd.ftl().Probe(lpn);
  std::printf("LPN %llu -> PPN %llu (block %llu, page offset %llu)\n",
              static_cast<unsigned long long>(lpn), static_cast<unsigned long long>(ppn),
              static_cast<unsigned long long>(ssd.geometry().BlockOf(ppn)),
              static_cast<unsigned long long>(ssd.geometry().OffsetOf(ppn)));

  // 5. The §5 evaluation metrics, available after any run.
  const AtStats& s = ssd.ftl().stats();
  std::printf("metrics: Hr=%.3f Prd=%.3f WA=%.3f trans-reads=%llu trans-writes=%llu\n",
              s.hit_ratio(), s.dirty_replacement_probability(), s.write_amplification(),
              static_cast<unsigned long long>(s.trans_reads_total()),
              static_cast<unsigned long long>(s.trans_writes_total()));
  return 0;
}
