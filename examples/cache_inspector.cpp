// Watch TPFTL's two-level mapping cache react to workload phases.
//
//   $ ./cache_inspector
//
// Drives a deliberately phased workload — random OLTP-like traffic, then a
// long sequential scan, then random again — and samples the cache after each
// phase segment: TP-node count, entries per node, dirty entries, the
// selective-prefetch counter state, and the hit ratio. This makes §3.2's
// observation (sequential bursts collapse the TP-node count) and §4.3's
// response (selective prefetch activates) directly visible.

#include <cstdio>
#include <memory>

#include "src/core/tpftl.h"
#include "src/flash/nand.h"
#include "src/util/rng.h"
#include "src/util/zipf.h"

int main() {
  using namespace tpftl;

  FlashGeometry geometry = MakeGeometry(64ULL << 20);
  NandFlash flash(geometry);
  FtlEnv env;
  env.flash = &flash;
  env.logical_pages = LogicalPages(geometry, 64ULL << 20);
  env.cache_bytes = PaperCacheBytes(geometry, env.logical_pages);
  Tpftl ftl(env);

  std::printf("TPFTL on 64 MiB, cache %llu B (entry budget %llu B)\n",
              static_cast<unsigned long long>(env.cache_bytes),
              static_cast<unsigned long long>(ftl.entry_cache_budget_bytes()));
  std::printf("%-22s %8s %8s %8s %10s %9s %7s\n", "phase", "nodes", "entries", "dirty",
              "ent/node", "hitratio", "sPref");

  Rng rng(7);
  ZipfGenerator zipf(env.logical_pages, 1.1);
  Lpn seq_cursor = 0;

  auto sample = [&](const char* phase) {
    const auto& cache = ftl.cache();
    const double per_node =
        cache.node_count() > 0
            ? static_cast<double>(cache.entry_count()) / static_cast<double>(cache.node_count())
            : 0.0;
    std::printf("%-22s %8llu %8llu %8llu %10.1f %8.1f%% %7s\n", phase,
                static_cast<unsigned long long>(cache.node_count()),
                static_cast<unsigned long long>(cache.entry_count()),
                static_cast<unsigned long long>(cache.dirty_entry_count()), per_node,
                100.0 * ftl.stats().hit_ratio(), ftl.prefetcher().active() ? "ON" : "off");
  };

  auto random_phase = [&](uint64_t ops) {
    for (uint64_t i = 0; i < ops; ++i) {
      const Lpn lpn = zipf.Sample(rng);
      if (rng.Chance(0.7)) {
        ftl.WritePage(lpn);
      } else {
        ftl.ReadPage(lpn);
      }
    }
  };
  auto sequential_phase = [&](uint64_t ops) {
    for (uint64_t i = 0; i < ops; ++i) {
      ftl.ReadPage(seq_cursor);
      seq_cursor = (seq_cursor + 1) % env.logical_pages;
    }
  };

  random_phase(20000);
  sample("random warm-up");
  random_phase(20000);
  sample("random steady");
  sequential_phase(2000);
  sample("sequential (early)");
  sequential_phase(8000);
  sample("sequential (late)");
  random_phase(20000);
  sample("random again");

  std::printf("\nselective prefetch: %llu activations, %llu deactivations\n",
              static_cast<unsigned long long>(ftl.prefetcher().activations()),
              static_cast<unsigned long long>(ftl.prefetcher().deactivations()));
  std::printf("batch updates cleaned %llu dirty entries across %llu dirty evictions\n",
              static_cast<unsigned long long>(ftl.stats().batch_writebacks),
              static_cast<unsigned long long>(ftl.stats().dirty_evictions));
  return 0;
}
