// Characterize a workload the way the paper's Table 4 does.
//
//   $ ./workload_stats [trace-file | profile-name] [requests]
//
// Prints write ratio, average request size, sequential read/write fractions,
// address-space span, working-set size, and a request-size histogram — for a
// real trace file (SPC or MSR format) or one of the built-in synthetic
// profiles (financial1/financial2/msr-ts/msr-src). Useful both to validate
// that the synthetic profiles land on Table 4 and to characterize new traces
// before replaying them.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "src/trace/trace_io.h"
#include "src/util/histogram.h"
#include "src/util/str.h"
#include "src/util/table.h"
#include "src/workload/profiles.h"

int main(int argc, char** argv) {
  using namespace tpftl;

  const std::string source = argc > 1 ? argv[1] : "financial1";
  const uint64_t requests = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 100000;

  std::vector<IoRequest> trace;
  std::string label;
  if (auto profile = ProfileByName(source, requests)) {
    trace = MaterializeWorkload(*profile).requests();
    label = profile->name + " (synthetic)";
  } else if (auto loaded = LoadTraceFile(source)) {
    trace = std::move(loaded->requests);
    label = source;
  } else {
    std::fprintf(stderr,
                 "'%s' is neither a known profile (financial1/financial2/msr-ts/msr-src) "
                 "nor a readable trace file\n",
                 source.c_str());
    return 1;
  }

  const WorkloadFeatures f = AnalyzeTrace(trace);
  uint64_t span = 0;
  double duration_us = 0.0;
  Histogram size_hist(64);  // In 4 KiB units.
  for (const IoRequest& r : trace) {
    span = std::max(span, r.offset_bytes + r.size_bytes);
    duration_us = std::max(duration_us, r.arrival_us);
    size_hist.Add((r.size_bytes + 4095) / 4096);
  }

  Table table("Workload characteristics — " + label);
  table.SetColumns({"parameter", "value"});
  table.AddRow({"requests", std::to_string(f.requests)});
  table.AddRow({"write ratio", FormatDouble(100.0 * f.write_ratio, 1) + "%"});
  table.AddRow({"avg request size", FormatBytes(static_cast<uint64_t>(f.mean_request_bytes))});
  table.AddRow({"seq. read", FormatDouble(100.0 * f.seq_read_fraction, 1) + "%"});
  table.AddRow({"seq. write", FormatDouble(100.0 * f.seq_write_fraction, 1) + "%"});
  table.AddRow({"address span", FormatBytes(span)});
  table.AddRow({"working set", std::to_string(f.distinct_pages) + " pages (" +
                                   FormatBytes(f.distinct_pages * 4096) + ")"});
  table.AddRow({"duration", FormatDouble(duration_us / 1e6, 1) + " s"});
  table.AddRow({"mean IOPS",
                FormatDouble(duration_us > 0 ? 1e6 * static_cast<double>(f.requests) / duration_us
                                             : 0.0,
                             0)});
  table.Print(std::cout);

  Table hist("Request size distribution (4 KiB pages per request)");
  hist.SetColumns({"pages", "share"});
  for (const uint64_t pages : {1, 2, 3, 4, 8, 16}) {
    hist.AddRow({"<= " + std::to_string(pages),
                 FormatDouble(100.0 * size_hist.CdfAt(pages), 1) + "%"});
  }
  hist.Print(std::cout);
  return 0;
}
