// Replay a block trace file (SPC/UMass or MSR Cambridge format) through a
// simulated SSD and print the full metric report.
//
//   $ ./trace_replay <trace-file> [ftl] [capacity-mb]
//     ftl:         dftl | sftl | cdftl | tpftl | optimal | block  (default tpftl)
//     capacity-mb: SSD logical capacity; default sizes the device to the
//                  trace's address span, like the paper (§5.1).
//
// With no arguments it synthesizes a small Financial1-like trace, saves it in
// SPC format, and replays that — a self-contained demonstration of the trace
// pipeline (generate → save → auto-detect → parse → replay).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "src/ssd/runner.h"
#include "src/trace/trace_io.h"
#include "src/trace/vector_trace.h"
#include "src/util/str.h"
#include "src/util/table.h"
#include "src/workload/profiles.h"

namespace {

using namespace tpftl;

uint64_t RoundUpTo(uint64_t value, uint64_t multiple) {
  return (value + multiple - 1) / multiple * multiple;
}

int Replay(const std::string& path, FtlKind kind, uint64_t capacity_override_mb) {
  const auto loaded = LoadTraceFile(path);
  if (!loaded.has_value()) {
    std::fprintf(stderr, "cannot load trace '%s'\n", path.c_str());
    return 1;
  }
  std::printf("loaded %zu requests (%llu malformed lines skipped, format %s)\n",
              loaded->requests.size(),
              static_cast<unsigned long long>(loaded->malformed_lines),
              loaded->format == TraceFormat::kSpc ? "SPC" : "MSR");

  uint64_t max_end = 0;
  for (const IoRequest& r : loaded->requests) {
    max_end = std::max(max_end, r.offset_bytes + r.size_bytes);
  }
  uint64_t capacity = capacity_override_mb > 0
                          ? capacity_override_mb << 20
                          : RoundUpTo(std::max<uint64_t>(max_end, 16ULL << 20), 256 * 1024);

  ExperimentConfig config;
  config.workload.name = path;
  config.workload.address_space_bytes = RoundUpTo(capacity, 256 * 1024);
  config.workload.num_requests = loaded->requests.size();
  config.ftl_kind = kind;

  // Requests beyond the configured capacity wrap (the SSD clamps); warn.
  if (max_end > config.workload.address_space_bytes) {
    std::fprintf(stderr, "warning: trace spans %s but capacity is %s — offsets wrap\n",
                 FormatBytes(max_end).c_str(),
                 FormatBytes(config.workload.address_space_bytes).c_str());
  }

  VectorTrace trace(loaded->requests);
  const RunReport r = RunTrace(config, trace);

  Table table("Replay report — " + r.ftl_name + " on " + path);
  table.SetColumns({"metric", "value"});
  table.AddRow({"requests measured", std::to_string(r.requests)});
  table.AddRow({"device capacity", FormatBytes(config.workload.address_space_bytes)});
  table.AddRow({"mapping cache", FormatBytes(r.cache_bytes_budget)});
  table.AddRow({"hit ratio", FormatDouble(r.hit_ratio, 4)});
  table.AddRow({"P(replace dirty)", FormatDouble(r.prd, 4)});
  table.AddRow({"translation page reads", std::to_string(r.trans_reads)});
  table.AddRow({"translation page writes", std::to_string(r.trans_writes)});
  table.AddRow({"mean response (us)", FormatDouble(r.mean_response_us, 1)});
  table.AddRow({"write amplification", FormatDouble(r.write_amplification, 3)});
  table.AddRow({"block erases", std::to_string(r.block_erases)});
  table.Print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tpftl;

  std::string path;
  FtlKind kind = FtlKind::kTpftl;
  uint64_t capacity_mb = 0;
  if (argc > 1) {
    path = argv[1];
  } else {
    // Self-contained demo: synthesize, save, replay.
    path = "/tmp/tpftl_demo_trace.spc";
    auto cfg = Financial1Profile(50000);
    cfg.address_space_bytes = 64ULL << 20;
    const VectorTrace trace = MaterializeWorkload(cfg);
    if (!SaveTraceSpc(path, trace.requests())) {
      std::fprintf(stderr, "cannot write demo trace\n");
      return 1;
    }
    std::printf("no trace given; synthesized a Financial1-like demo at %s\n", path.c_str());
  }
  if (argc > 2) {
    const auto parsed = FtlKindByName(argv[2]);
    if (!parsed.has_value()) {
      std::fprintf(stderr, "unknown FTL '%s'\n", argv[2]);
      return 1;
    }
    kind = *parsed;
  }
  if (argc > 3) {
    capacity_mb = std::strtoull(argv[3], nullptr, 10);
  }
  return Replay(path, kind, capacity_mb);
}
