// Compare the four paper FTLs (plus extras) on one workload profile.
//
//   $ ./ftl_compare [workload] [requests]
//     workload: financial1 | financial2 | msr-ts | msr-src   (default financial1)
//     requests: trace length                                  (default 200000)
//
// Prints one row per FTL with every §5 metric: hit ratio, Prd, translation
// reads/writes, mean response time, write amplification, and erase count.

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "src/ssd/runner.h"
#include "src/util/str.h"
#include "src/util/table.h"
#include "src/workload/profiles.h"

int main(int argc, char** argv) {
  using namespace tpftl;

  const std::string workload_name = argc > 1 ? argv[1] : "financial1";
  const uint64_t requests = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 200000;

  const auto workload = ProfileByName(workload_name, requests);
  if (!workload.has_value()) {
    std::fprintf(stderr, "unknown workload '%s' (try financial1/financial2/msr-ts/msr-src)\n",
                 workload_name.c_str());
    return 1;
  }

  Table table(workload->name + " — FTL comparison (" + std::to_string(requests) + " requests)");
  table.SetColumns({"FTL", "Hr", "Prd", "TransRd", "TransWr", "RespTime(us)", "WA", "Erases"});

  for (const FtlKind kind :
       {FtlKind::kDftl, FtlKind::kSftl, FtlKind::kCdftl, FtlKind::kTpftl, FtlKind::kOptimal}) {
    ExperimentConfig config;
    config.workload = *workload;
    config.ftl_kind = kind;
    const RunReport r = RunExperiment(config);
    table.AddRow({r.ftl_name, FormatDouble(r.hit_ratio, 3), FormatDouble(r.prd, 3),
                  std::to_string(r.trans_reads), std::to_string(r.trans_writes),
                  FormatDouble(r.mean_response_us, 0), FormatDouble(r.write_amplification, 2),
                  std::to_string(r.block_erases)});
    std::fprintf(stderr, "done: %s\n", r.ftl_name.c_str());
  }
  table.Print(std::cout);
  return 0;
}
