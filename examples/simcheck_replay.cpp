// simcheck_replay — replay, minimize, or generate .simcheck repro files.
//
// Replay a repro (e.g. a CI artifact) to its recorded divergence:
//   simcheck_replay repro.simcheck
// Minimize a failing repro further and write the result:
//   simcheck_replay repro.simcheck --shrink=min.simcheck
// Generate a fresh schedule as a repro file (corpus curation):
//   simcheck_replay --generate=powercut:TPFTL:11:1500 out.simcheck
//
// Exit codes: 0 = run is clean, 2 = divergence reproduced, 1 = usage or I/O
// error. Replays are deterministic: the same file always diverges at the
// same step with the same message.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/testing/repro.h"
#include "src/testing/schedule.h"
#include "src/testing/shrink.h"
#include "src/testing/simcheck.h"

namespace {

using tpftl::FtlKindByName;
using tpftl::FtlKindName;
using namespace tpftl::simcheck;

int Usage() {
  std::fprintf(stderr,
               "usage: simcheck_replay <repro.simcheck> [--shrink=<out.simcheck>]\n"
               "       simcheck_replay --generate=<profile>:<ftl>:<seed>:<ops> "
               "<out.simcheck>\n");
  return 1;
}

void PrintResult(const Repro& repro, const SimResult& r) {
  std::printf("ftl        %s\n", FtlKindName(repro.kind));
  std::printf("profile    %s\n", repro.profile.name.c_str());
  std::printf("seed       %llu\n", static_cast<unsigned long long>(repro.seed));
  std::printf("ops        %zu\n", repro.ops.size());
  std::printf("steps      %llu\n", static_cast<unsigned long long>(r.steps_executed));
  std::printf("power cuts %llu (recoveries %llu)\n",
              static_cast<unsigned long long>(r.power_cuts),
              static_cast<unsigned long long>(r.recoveries));
  if (r.ok) {
    std::printf("verdict    OK (digest %016llx)\n",
                static_cast<unsigned long long>(r.final_digest));
  } else {
    std::printf("verdict    DIVERGED at %s\n", r.message.c_str());
  }
}

int Generate(const std::string& spec, const std::string& out_path) {
  // <profile>:<ftl>:<seed>:<ops>
  std::vector<std::string> parts;
  size_t begin = 0;
  while (true) {
    const size_t colon = spec.find(':', begin);
    parts.push_back(spec.substr(begin, colon - begin));
    if (colon == std::string::npos) {
      break;
    }
    begin = colon + 1;
  }
  if (parts.size() != 4) {
    return Usage();
  }
  Repro repro;
  repro.profile = ProfileByName(parts[0]);
  const auto kind = FtlKindByName(parts[1]);
  if (!kind.has_value()) {
    std::fprintf(stderr, "unknown ftl '%s'\n", parts[1].c_str());
    return 1;
  }
  repro.kind = *kind;
  repro.seed = std::strtoull(parts[2].c_str(), nullptr, 10);
  const uint64_t ops = std::strtoull(parts[3].c_str(), nullptr, 10);
  repro.ops = GenerateSchedule(repro.profile, repro.seed, ops);
  if (!WriteReproFile(out_path, repro)) {
    std::fprintf(stderr, "cannot write '%s'\n", out_path.c_str());
    return 1;
  }
  const SimResult r = RunSchedule(repro.kind, repro.profile, repro.seed, repro.ops);
  PrintResult(repro, r);
  std::printf("wrote      %s\n", out_path.c_str());
  return r.ok ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  std::string repro_path;
  std::string shrink_out;
  std::string generate_spec;
  std::string generate_out;
  for (const std::string& arg : args) {
    if (arg.rfind("--shrink=", 0) == 0) {
      shrink_out = arg.substr(9);
    } else if (arg.rfind("--generate=", 0) == 0) {
      generate_spec = arg.substr(11);
    } else if (!generate_spec.empty() && generate_out.empty()) {
      generate_out = arg;
    } else if (repro_path.empty()) {
      repro_path = arg;
    } else {
      return Usage();
    }
  }

  if (!generate_spec.empty()) {
    if (generate_out.empty()) {
      return Usage();
    }
    return Generate(generate_spec, generate_out);
  }
  if (repro_path.empty()) {
    return Usage();
  }

  Repro repro;
  std::string error;
  if (!ReadReproFile(repro_path, &repro, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  SimResult r = RunSchedule(repro.kind, repro.profile, repro.seed, repro.ops);
  PrintResult(repro, r);

  if (!r.ok && !shrink_out.empty()) {
    const ShrinkResult shrunk = ShrinkSchedule(repro.kind, repro.profile, repro.seed,
                                               repro.ops);
    std::printf("shrunk     %zu -> %zu ops (%llu runs)\n", repro.ops.size(),
                shrunk.ops.size(), static_cast<unsigned long long>(shrunk.runs));
    std::printf("minimal    %s\n", shrunk.failure.message.c_str());
    Repro minimal = repro;
    minimal.ops = shrunk.ops;
    if (!WriteReproFile(shrink_out, minimal)) {
      std::fprintf(stderr, "cannot write '%s'\n", shrink_out.c_str());
      return 1;
    }
    std::printf("wrote      %s\n", shrink_out.c_str());
  }
  return r.ok ? 0 : 2;
}
