// Explore SSD lifetime mechanics: GC policy, wear distribution, endurance.
//
//   $ ./lifetime_explorer [endurance-cycles]
//
// Runs the same hot/cold write-heavy workload under the three GC victim
// policies and reports write amplification, erase totals, and the wear
// spread (max − min block erases). Then reruns with a finite per-block erase
// budget to show bad blocks accumulating while the device keeps serving —
// the §1 "limited endurance" story end to end.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>

#include "src/core/ftl_factory.h"
#include "src/util/rng.h"
#include "src/util/str.h"
#include "src/util/table.h"

namespace {

using namespace tpftl;

struct LifetimeResult {
  double wa = 0.0;
  uint64_t erases = 0;
  uint64_t wear_spread = 0;
  uint64_t max_wear = 0;
  uint64_t bad_blocks = 0;
};

LifetimeResult RunLifetime(GcPolicy policy, uint64_t max_cycles, uint64_t writes) {
  FlashGeometry geometry = MakeGeometry(32ULL << 20);
  geometry.max_erase_cycles = max_cycles;
  NandFlash flash(geometry);
  FtlEnv env;
  env.flash = &flash;
  env.logical_pages = LogicalPages(geometry, 32ULL << 20);
  env.cache_bytes = PaperCacheBytes(geometry, env.logical_pages);
  env.gc_policy = policy;
  env.wear_spread_limit = 8;
  auto ftl = CreateFtl(FtlKind::kTpftl, env);

  for (Lpn lpn = 0; lpn < env.logical_pages; ++lpn) {
    ftl->WritePage(lpn);  // Fill.
  }
  ftl->ResetStats();

  // 90 % of writes hit a 5 % hot region — the classic wear-leveling stress.
  Rng rng(17);
  const uint64_t hot_pages = env.logical_pages / 20;
  for (uint64_t i = 0; i < writes; ++i) {
    const Lpn lpn = rng.Chance(0.9) ? rng.Below(hot_pages)
                                    : hot_pages + rng.Below(env.logical_pages - hot_pages);
    ftl->WritePage(lpn);
  }

  LifetimeResult r;
  r.wa = ftl->stats().write_amplification();
  r.erases = flash.stats().block_erases;
  uint64_t min_wear = ~0ULL;
  for (BlockId b = 0; b < geometry.total_blocks; ++b) {
    min_wear = std::min(min_wear, flash.block(b).erase_count());
    r.max_wear = std::max(r.max_wear, flash.block(b).erase_count());
  }
  r.wear_spread = r.max_wear - min_wear;
  const auto* demand = dynamic_cast<const DemandFtl*>(ftl.get());
  r.bad_blocks = demand != nullptr ? demand->block_manager().bad_block_count() : 0;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tpftl;

  const uint64_t endurance = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 50;
  constexpr uint64_t kWrites = 200000;

  Table policies("GC policy vs lifetime — TPFTL, 32 MiB, 90/5 hot-cold writes (" +
                 std::to_string(kWrites) + " writes, unlimited endurance)");
  policies.SetColumns({"policy", "WA", "erases", "max wear", "wear spread"});
  for (const auto& [name, policy] :
       {std::pair{"greedy", GcPolicy::kGreedy}, {"cost-benefit", GcPolicy::kCostBenefit},
        {"wear-aware", GcPolicy::kWearAware}}) {
    const LifetimeResult r = RunLifetime(policy, 0, kWrites);
    policies.AddRow({name, FormatDouble(r.wa, 2), std::to_string(r.erases),
                     std::to_string(r.max_wear), std::to_string(r.wear_spread)});
  }
  policies.Print(std::cout);

  Table endurance_table("Finite endurance — same workload, " + std::to_string(endurance) +
                        " erase cycles per block");
  endurance_table.SetColumns({"policy", "WA", "bad blocks", "max wear"});
  // Fewer writes here: the finite budget must wear blocks out without
  // exhausting the whole device.
  for (const auto& [name, policy] :
       {std::pair{"greedy", GcPolicy::kGreedy}, {"wear-aware", GcPolicy::kWearAware}}) {
    const LifetimeResult r = RunLifetime(policy, endurance, kWrites / 5);
    endurance_table.AddRow({name, FormatDouble(r.wa, 2), std::to_string(r.bad_blocks),
                            std::to_string(r.max_wear)});
  }
  endurance_table.Print(std::cout);
  std::printf(
      "Takeaways: cost-benefit's age weighting both improves WA and evens wear\n"
      "(it mixes old cold blocks into the rotation); wear-aware selection caps\n"
      "the worst block's wear, postponing the first bad-block retirement.\n");
  return 0;
}
