#!/usr/bin/env bash
# Tier-1 verification: configure, build, run the full test suite, then smoke-
# run the mapping-cache throughput benchmark (writes build/BENCH_cache.json).
#
# Usage: scripts/verify.sh [build-dir]
# Knobs: TPFTL_BENCH_CACHE_OPS (default 200000 here — a smoke run, not a
#        stable measurement; use the default 2000000 for recorded numbers).

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
JOBS="$(nproc 2>/dev/null || echo 2)"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j"$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$JOBS"

TPFTL_BENCH_CACHE_OPS="${TPFTL_BENCH_CACHE_OPS:-200000}" \
  "./$BUILD_DIR/bench/bench_micro_cache" "--throughput=$BUILD_DIR/BENCH_cache.json"

echo "verify: OK"
