#!/usr/bin/env bash
# Tier-1 verification: configure, build, run the full test suite, then smoke-
# run the mapping-cache throughput benchmark (writes build/BENCH_cache.json).
#
# Usage: scripts/verify.sh [--sanitize] [--simcheck] [build-dir]
#   --sanitize   additionally build the hardened + ASan/UBSan configuration
#                (cmake/ci-hardened-sanitized.cmake) in <build-dir>-asan and
#                run the full suite under it. Slower; catches memory and UB
#                bugs the default build cannot.
#   --simcheck   additionally re-run the SimCheck model-checking suite at a
#                medium op budget (TPFTL_SIMCHECK_OPS=6000, 4x the ctest
#                default) — a deeper randomized sweep of all 8 FTLs. Failing
#                runs drop minimized .simcheck repro files under
#                <build-dir>/simcheck-repros/ (replay with
#                build/examples/simcheck_replay).
# Knobs: TPFTL_BENCH_CACHE_OPS (default 200000 here — a smoke run, not a
#        stable measurement; use the default 2000000 for recorded numbers).

set -euo pipefail
cd "$(dirname "$0")/.."

SANITIZE=0
SIMCHECK=0
BUILD_DIR="build"
for arg in "$@"; do
  case "$arg" in
    --sanitize) SANITIZE=1 ;;
    --simcheck) SIMCHECK=1 ;;
    *) BUILD_DIR="$arg" ;;
  esac
done
JOBS="$(nproc 2>/dev/null || echo 2)"

# Guard against build trees or object files sneaking into the index (a
# build-review/ tree was once committed by accident — 535 files).
TRACKED_ARTIFACTS="$(git ls-files | grep -E '^build|(^|/)Testing/|(^|/)CMakeCache\.txt$|(^|/)CMakeFiles/|\.o$|\.a$' || true)"
if [[ -n "$TRACKED_ARTIFACTS" ]]; then
  echo "verify: FAIL — build artifacts are tracked by git:" >&2
  echo "$TRACKED_ARTIFACTS" | head -20 >&2
  exit 1
fi

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j"$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$JOBS"

TPFTL_BENCH_CACHE_OPS="${TPFTL_BENCH_CACHE_OPS:-200000}" \
  "./$BUILD_DIR/bench/bench_micro_cache" "--throughput=$BUILD_DIR/BENCH_cache.json"

if [[ "$SIMCHECK" == "1" ]]; then
  TPFTL_SIMCHECK_OPS=6000 \
  TPFTL_SIMCHECK_REPRO_DIR="$(cd "$BUILD_DIR" && pwd)/simcheck-repros" \
    ctest --test-dir "$BUILD_DIR" -R 'SimCheck' --output-on-failure -j"$JOBS"
fi

if [[ "$SANITIZE" == "1" ]]; then
  ASAN_DIR="${BUILD_DIR}-asan"
  cmake -B "$ASAN_DIR" -S . -C cmake/ci-hardened-sanitized.cmake
  cmake --build "$ASAN_DIR" -j"$JOBS"
  ctest --test-dir "$ASAN_DIR" --output-on-failure -j"$JOBS"
fi

echo "verify: OK"
