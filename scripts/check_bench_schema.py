#!/usr/bin/env python3
"""Schema validation for the tracked/emitted BENCH_*.json artifacts.

Stdlib-only. Each bench binary stamps its output with a "schema" identifier;
this script checks the document's shape against the expected field layout so
CI catches a bench that silently changed (or broke) its JSON before the
comparison tooling reads stale garbage.

Usage:
    check_bench_schema.py FILE [FILE ...]
    check_bench_schema.py --glob DIR   # validate every BENCH_*.json in DIR

Exit status: 0 when every file validates, 1 otherwise.
"""

import glob
import json
import numbers
import os
import sys


def _require(cond, path, message):
    if not cond:
        raise ValueError(f"{path}: {message}")


# Fields that must never reappear in any bench artifact. p99_log2_ub_us was
# the log2-bucket histogram upper bound — an estimator the sub-bucketed
# histogram obsoleted and whose up-to-2x inflation kept getting quoted as a
# real percentile.
_BANNED_FIELDS = frozenset({"p99_log2_ub_us"})


def _check_fields(obj, fields, path, optional=None):
    """fields: name -> type; every field must be present and typed.

    optional: name -> type; type-checked only when present (fields added to a
    schema after runs were already recorded).
    """
    _require(isinstance(obj, dict), path, f"expected object, got {type(obj).__name__}")
    for name in _BANNED_FIELDS:
        _require(name not in obj, path, f"banned field '{name}' present")
    for name, kind in fields.items():
        _require(name in obj, path, f"missing field '{name}'")
        _require(
            isinstance(obj[name], kind) and not isinstance(obj[name], bool),
            path,
            f"field '{name}' has type {type(obj[name]).__name__}",
        )
    for name, kind in (optional or {}).items():
        if name in obj:
            _require(
                isinstance(obj[name], kind) and not isinstance(obj[name], bool),
                path,
                f"field '{name}' has type {type(obj[name]).__name__}",
            )


_NUM = numbers.Real
_STR = str
_INT = numbers.Integral


def _check_cache(doc, path):
    _require(isinstance(doc.get("results"), list) and doc["results"], path, "empty 'results'")
    for i, row in enumerate(doc["results"]):
        _check_fields(
            row,
            {"name": _STR, "ops": _INT, "seconds": _NUM, "ops_per_sec": _NUM},
            f"{path}.results[{i}]",
        )


def _check_labeled_runs(doc, path, result_fields, optional_fields=None):
    _require(isinstance(doc.get("runs"), list) and doc["runs"], path, "empty 'runs'")
    for i, run in enumerate(doc["runs"]):
        rpath = f"{path}.runs[{i}]"
        _check_fields(run, {"label": _STR, "workload": _STR}, rpath)
        _require(isinstance(run.get("results"), list) and run["results"], rpath, "empty 'results'")
        for j, row in enumerate(run["results"]):
            _check_fields(row, result_fields, f"{rpath}.results[{j}]", optional_fields)


def _check_e2e(doc, path):
    _check_labeled_runs(
        doc,
        path,
        {
            "ftl": _STR,
            "requests": _INT,
            "wall_seconds": _NUM,
            "requests_per_sec": _NUM,
            "ns_per_request": _NUM,
            "gc_time_share": _NUM,
            "hit_ratio": _NUM,
            "prd": _NUM,
            "write_amplification": _NUM,
            "block_erases": _INT,
            "trans_reads": _INT,
            "trans_writes": _INT,
        },
        # Added with the observability layer; runs recorded earlier lack it.
        optional_fields={"p99_us": _NUM},
    )
    for i, run in enumerate(doc["runs"]):
        _require_ftl_row(run["results"], "LearnedFTL", f"{path}.runs[{i}]")


def _check_e2e_v2(doc, path):
    # v2 keeps the v1 per-FTL replay table...
    _check_e2e(doc, path)
    # ...and adds the multi-die parallelism section.
    sweep = doc.get("parallel_sweep")
    spath = f"{path}.parallel_sweep"
    _check_fields(sweep, {"workload": _STR}, spath)
    _require(isinstance(sweep.get("points"), list) and sweep["points"], spath, "empty 'points'")
    for i, point in enumerate(sweep["points"]):
        ppath = f"{spath}.points[{i}]"
        _check_fields(
            point,
            {
                "ftl": _STR,
                "channels": _INT,
                "dies_per_channel": _INT,
                "dies": _INT,
                "queue_depth": _INT,
                "sim_requests_per_sec": _NUM,
                "ns_per_request": _NUM,
                "mean_us": _NUM,
                "p99_us": _NUM,
                "die_utilization": list,
            },
            ppath,
        )
        _require(
            point["dies"] == point["channels"] * point["dies_per_channel"],
            ppath,
            "dies != channels * dies_per_channel",
        )
        _check_die_utilization(point, point["dies"], ppath)
    _require(isinstance(sweep.get("sharded"), list) and sweep["sharded"], spath, "empty 'sharded'")
    for i, point in enumerate(sweep["sharded"]):
        ppath = f"{spath}.sharded[{i}]"
        _check_fields(
            point,
            {
                "ftl": _STR,
                "shards": _INT,
                "threads": _INT,
                "dies": _INT,
                "requests": _INT,
                "sub_requests": _INT,
                "sim_requests_per_sec": _NUM,
                "baseline_1die_requests_per_sec": _NUM,
                "speedup": _NUM,
                "wall_seconds": _NUM,
                "die_utilization": list,
            },
            ppath,
        )
        _check_die_utilization(point, point["dies"], ppath)


def _require_ftl_row(rows, ftl_name, path):
    _require(
        any(row.get("ftl") == ftl_name for row in rows),
        path,
        f"no '{ftl_name}' row — the bench must cover every implemented FTL",
    )


def _check_die_utilization(point, dies, path):
    util = point["die_utilization"]
    _require(len(util) == dies, path, f"die_utilization has {len(util)} entries for {dies} dies")
    for d, value in enumerate(util):
        _require(
            isinstance(value, numbers.Real) and 0.0 <= value <= 1.0,
            path,
            f"die_utilization[{d}] = {value!r} outside [0, 1]",
        )


def _check_latency(doc, path):
    _check_labeled_runs(
        doc,
        path,
        {
            "ftl": _STR,
            "requests": _INT,
            "mean_response_us": _NUM,
            "p50_us": _NUM,
            "p90_us": _NUM,
            "p99_us": _NUM,
            "p999_us": _NUM,
            "max_us": _NUM,
            "queue_us": _NUM,
            "translation_us": _NUM,
            "user_us": _NUM,
            "gc_us": _NUM,
            "flush_us": _NUM,
            "trans_reads": _INT,
            "trans_writes": _INT,
            "model_hits": _INT,
            "model_misses": _INT,
            "model_probe_reads": _INT,
            "model_retrains": _INT,
            "gc_victim_scans": _INT,
            "sum_check_ratio": _NUM,
        },
    )
    for i, run in enumerate(doc["runs"]):
        rpath = f"{path}.runs[{i}]"
        _require_ftl_row(run["results"], "LearnedFTL", rpath)
        for j, row in enumerate(run["results"]):
            # The load-bearing invariant: queue + phase flash time
            # reconstructs the measured response total within 0.1%.
            ratio = row["sum_check_ratio"]
            _require(
                0.999 <= ratio <= 1.001,
                f"{rpath}.results[{j}]",
                f"sum_check_ratio {ratio} outside [0.999, 1.001] — "
                "phase attribution does not reconstruct response time",
            )
            # Learned-index counters only move for the learned FTL; a nonzero
            # count elsewhere means stats plumbing leaked across FTLs.
            if row["ftl"] != "LearnedFTL":
                for field in ("model_hits", "model_misses", "model_probe_reads", "model_retrains"):
                    _require(
                        row[field] == 0,
                        f"{rpath}.results[{j}]",
                        f"model-free FTL {row['ftl']!r} has nonzero {field}",
                    )


def _check_recovery(doc, path):
    _require(isinstance(doc.get("runs"), list) and doc["runs"], path, "empty 'runs'")
    for i, run in enumerate(doc["runs"]):
        _check_fields(
            run,
            {
                "ftl": _STR,
                "write_ratio": _NUM,
                "cache_bytes": _INT,
                "cut_op": _INT,
                "pages_scanned": _INT,
                "torn_pages": _INT,
                "data_mappings": _INT,
                "translation_rewrites": _INT,
                "unpersisted_window": _INT,
                "scan_ms": _NUM,
                "rebuild_ms": _NUM,
                "recover_wall_ms": _NUM,
            },
            f"{path}.runs[{i}]",
        )


def _check_recovery_v2(doc, path):
    # v2 replaces the v1 single-table layout: same-crashed-image reboot
    # comparisons ("runs"), foreground overhead of enabling checkpointing
    # ("foreground_overhead"), and the sparse-device capacity sweep
    # ("capacity_sweep").
    _require(isinstance(doc.get("runs"), list) and doc["runs"], path, "empty 'runs'")
    for i, run in enumerate(doc["runs"]):
        rpath = f"{path}.runs[{i}]"
        _check_fields(
            run,
            {
                "ftl": _STR,
                "write_ratio": _NUM,
                "cache_bytes": _INT,
                "cut_op": _INT,
                "checkpoint_interval": _INT,
                "scan_pages_scanned": _INT,
                "scan_ms": _NUM,
                "scan_wall_ms": _NUM,
                "ckpt_pages_scanned": _INT,
                "ckpt_ms": _NUM,
                "ckpt_wall_ms": _NUM,
                "journal_records_replayed": _INT,
                "blocks_rescanned": _INT,
                "checkpoint_bytes_read": _INT,
                "data_mappings": _INT,
                "unpersisted_window": _INT,
                "reboot_speedup": _NUM,
            },
            rpath,
        )
        # _check_fields rejects bools by design; this one really is a bool.
        _require(
            isinstance(run.get("ckpt_used_checkpoint"), bool),
            rpath,
            "field 'ckpt_used_checkpoint' must be a bool",
        )
        _require(
            run["ckpt_used_checkpoint"],
            rpath,
            "checkpointed boot fell back to full scan — cadence misconfigured",
        )
        _require(
            run["reboot_speedup"] > 1.0,
            rpath,
            f"reboot_speedup {run['reboot_speedup']} is not > 1",
        )
    _require_ftl_row(doc["runs"], "LearnedFTL", f"{path}.runs")
    _require(
        isinstance(doc.get("foreground_overhead"), list) and doc["foreground_overhead"],
        path,
        "empty 'foreground_overhead'",
    )
    for i, row in enumerate(doc["foreground_overhead"]):
        _check_fields(
            row,
            {
                "ftl": _STR,
                "checkpoint_interval": _INT,
                "baseline_ms": _NUM,
                "checkpointed_ms": _NUM,
                "overhead_pct": _NUM,
            },
            f"{path}.foreground_overhead[{i}]",
        )
    _require(
        isinstance(doc.get("capacity_sweep"), list) and doc["capacity_sweep"],
        path,
        "empty 'capacity_sweep'",
    )
    for i, row in enumerate(doc["capacity_sweep"]):
        cpath = f"{path}.capacity_sweep[{i}]"
        _check_fields(
            row,
            {
                "ftl": _STR,
                "capacity_gb": _INT,
                "logical_pages": _INT,
                "footprint_pages": _INT,
                "resident_segments": _INT,
                "scan_pages_scanned": _INT,
                "scan_ms": _NUM,
                "scan_wall_ms": _NUM,
                "ckpt_ms": _NUM,
                "ckpt_wall_ms": _NUM,
                "journal_records_replayed": _INT,
                "blocks_rescanned": _INT,
                "checkpoint_bytes_read": _INT,
                "reboot_speedup": _NUM,
            },
            cpath,
        )
        # The sparse-arena point: residency tracks the written footprint, not
        # the virtual capacity, and the scan is billed for every page.
        _require(
            row["footprint_pages"] <= row["logical_pages"],
            cpath,
            "footprint_pages exceeds logical_pages",
        )
        _require(
            row["scan_pages_scanned"] >= row["logical_pages"],
            cpath,
            "scan billed fewer pages than the logical capacity",
        )


_ENDURANCE_RUN_FIELDS = {
    "ftl": _STR,
    "gc_policy": _STR,
    "mode": _STR,
    "data_streams": _INT,
    "host_writes": _INT,
    "lifetime_bytes": _INT,
    "wa": _NUM,
    "erase_min": _INT,
    "erase_max": _INT,
    "erase_mean": _NUM,
    "erase_variance": _NUM,
    "retired_blocks": _INT,
    "static_level_blocks": _INT,
    "switch_merges": _INT,
    "partial_merges": _INT,
    "full_merges": _INT,
    "stream_writes": list,
}


def _check_endurance_section(doc, key, path):
    _require(isinstance(doc.get(key), list) and doc[key], path, f"empty '{key}'")
    by_config = {}
    for i, run in enumerate(doc[key]):
        rpath = f"{path}.{key}[{i}]"
        _check_fields(run, _ENDURANCE_RUN_FIELDS, rpath)
        for name in ("leveling", "reached_eol"):
            _require(isinstance(run.get(name), bool), rpath, f"field '{name}' must be a bool")
        # WA sane: at least 1 by definition, and nothing pathological enough
        # to suggest a broken GC loop.
        _require(1.0 <= run["wa"] < 64.0, rpath, f"wa {run['wa']} outside [1, 64)")
        _require(
            run["erase_min"] <= run["erase_mean"] <= run["erase_max"],
            rpath,
            "erase min/mean/max are not ordered",
        )
        _require(
            len(run["stream_writes"]) == run["data_streams"],
            rpath,
            f"stream_writes has {len(run['stream_writes'])} entries "
            f"for {run['data_streams']} streams",
        )
        by_config.setdefault((run["ftl"], run["gc_policy"]), {})[run["mode"]] = run
    for ftl in ("DFTL", "FAST", "BlockFTL", "LearnedFTL"):
        _require_ftl_row(doc[key], ftl, f"{path}.{key}")
    for (ftl, policy), modes in by_config.items():
        cpath = f"{path}.{key}[{ftl}/{policy}]"
        for mode in ("off", "streams", "leveling"):
            _require(mode in modes, cpath, f"missing mode '{mode}'")
    return by_config


def _check_endurance(doc, path):
    # Wear profile under fixed work: hot/cold separation must cut write
    # amplification, and the leveling layer must flatten the erase
    # distribution it rides on.
    wear = _check_endurance_section(doc, "wear_profile", path)
    for (ftl, policy), modes in wear.items():
        cpath = f"{path}.wear_profile[{ftl}/{policy}]"
        off, streams, leveling = modes["off"], modes["streams"], modes["leveling"]
        _require(
            streams["wa"] < off["wa"],
            cpath,
            f"hot/cold streams did not reduce WA ({off['wa']} -> {streams['wa']})",
        )
        _require(
            leveling["erase_max"] < streams["erase_max"],
            cpath,
            f"leveling did not reduce the erase max "
            f"({streams['erase_max']} -> {leveling['erase_max']})",
        )
        _require(
            leveling["erase_mean"] < off["erase_mean"],
            cpath,
            f"streams+leveling did not reduce the erase mean "
            f"({off['erase_mean']} -> {leveling['erase_mean']})",
        )
    # End-of-life: each stacked feature must not shorten the device's life,
    # and the full stack must extend it.
    eol = _check_endurance_section(doc, "end_of_life", path)
    for (ftl, policy), modes in eol.items():
        cpath = f"{path}.end_of_life[{ftl}/{policy}]"
        for mode, run in modes.items():
            _require(
                run["reached_eol"],
                f"{cpath}.{mode}",
                "device never reached end-of-life (op cap too low?)",
            )
        _require(
            modes["leveling"]["lifetime_bytes"] > modes["off"]["lifetime_bytes"],
            cpath,
            f"streams+leveling shortened the lifetime "
            f"({modes['off']['lifetime_bytes']} -> {modes['leveling']['lifetime_bytes']})",
        )
        _require(
            modes["streams"]["lifetime_bytes"] >= modes["off"]["lifetime_bytes"] * 0.95,
            cpath,
            "hot/cold streams alone materially shortened the lifetime",
        )
    _require(
        isinstance(doc.get("capacity_sweep"), list) and doc["capacity_sweep"],
        path,
        "empty 'capacity_sweep'",
    )
    for i, row in enumerate(doc["capacity_sweep"]):
        cpath = f"{path}.capacity_sweep[{i}]"
        _check_fields(
            row,
            {
                "ftl": _STR,
                "capacity_gb": _INT,
                "logical_pages": _INT,
                "footprint_pages": _INT,
                "resident_segments": _INT,
                "host_writes": _INT,
                "wa": _NUM,
                "erase_max": _INT,
                "stream_writes": list,
            },
            cpath,
        )
        _require(
            row["footprint_pages"] <= row["logical_pages"],
            cpath,
            "footprint_pages exceeds logical_pages",
        )
        _require(row["resident_segments"] >= 1, cpath, "no resident arena segments")
        _require(row["wa"] >= 1.0, cpath, f"wa {row['wa']} below 1")


_SERVING_QUANTILES = ("p50_us", "p90_us", "p99_us", "p999_us", "max_us")

_SERVING_ROW_FIELDS = {
    "ftl": _STR,
    "offered": _INT,
    "served": _INT,
    "dropped": _INT,
    "offered_rps": _NUM,
    "achieved_rps": _NUM,
    "arrival_span_us": _NUM,
    "makespan_us": _NUM,
    "peak_queue_us": _NUM,
    "final_backlog_us": _NUM,
    "mean_us": _NUM,
    "p50_us": _NUM,
    "p90_us": _NUM,
    "p99_us": _NUM,
    "p999_us": _NUM,
    "max_us": _NUM,
    "wa": _NUM,
    "gc_time_share": _NUM,
    "tenants": list,
}

_SERVING_TENANT_FIELDS = {
    "name": _STR,
    "requests": _INT,
    "dropped": _INT,
    "pages_read": _INT,
    "pages_written": _INT,
    "pages_trimmed": _INT,
    "gc_migrations": _INT,
    "block_erases": _INT,
    "mean_us": _NUM,
    "p50_us": _NUM,
    "p90_us": _NUM,
    "p99_us": _NUM,
    "p999_us": _NUM,
    "max_us": _NUM,
    "write_amp": _NUM,
    "gc_time_share": _NUM,
}

_SERVING_FTLS = (
    "Optimal",
    "DFTL",
    "CDFTL",
    "S-FTL",
    "TPFTL",
    "BlockFTL",
    "FAST",
    "ZFTL",
    "LearnedFTL",
)


def _check_quantile_order(row, path):
    values = [row[q] for q in _SERVING_QUANTILES]
    for a, b, va, vb in zip(_SERVING_QUANTILES, _SERVING_QUANTILES[1:], values, values[1:]):
        _require(va <= vb * 1.0000001, path, f"quantiles not monotone: {a}={va} > {b}={vb}")


def _check_serving(doc, path):
    _require(
        isinstance(doc.get("scenarios"), list) and doc["scenarios"],
        path,
        "empty 'scenarios'",
    )
    scenario_names = set()
    any_drops = False
    max_tenants = 0
    for i, scenario in enumerate(doc["scenarios"]):
        spath = f"{path}.scenarios[{i}]"
        _check_fields(
            scenario,
            {"scenario": _STR, "max_queue_us": _NUM, "tenant_count": _INT},
            spath,
        )
        scenario_names.add(scenario["scenario"])
        tenant_count = scenario["tenant_count"]
        _require(tenant_count >= 2, spath, "a serving scenario needs >= 2 tenants")
        max_tenants = max(max_tenants, tenant_count)
        _require(
            isinstance(scenario.get("tenants"), list)
            and len(scenario["tenants"]) == tenant_count,
            spath,
            "'tenants' must list every tenant spec",
        )
        for j, spec in enumerate(scenario["tenants"]):
            _check_fields(
                spec,
                {"name": _STR, "arrival": _STR, "rate_rps": _NUM, "requests": _INT},
                f"{spath}.tenants[{j}]",
            )
        _require(
            isinstance(scenario.get("results"), list) and scenario["results"],
            spath,
            "empty 'results'",
        )
        for ftl in _SERVING_FTLS:
            _require_ftl_row(scenario["results"], ftl, spath)
        for j, row in enumerate(scenario["results"]):
            rpath = f"{spath}.results[{j}]"
            _check_fields(row, _SERVING_ROW_FIELDS, rpath)
            _check_quantile_order(row, rpath)
            _require(
                row["served"] + row["dropped"] == row["offered"],
                rpath,
                f"served {row['served']} + dropped {row['dropped']} != offered {row['offered']}",
            )
            if row["dropped"] > 0:
                any_drops = True
            _require(
                scenario["max_queue_us"] > 0 or row["dropped"] == 0,
                rpath,
                "drops without admission control (max_queue_us == 0)",
            )
            # The achieved rate can never beat the offered rate (the device
            # cannot serve requests that were not offered)...
            _require(
                row["achieved_rps"] <= row["offered_rps"] * 1.02,
                rpath,
                f"achieved_rps {row['achieved_rps']} exceeds offered_rps {row['offered_rps']}",
            )
            # ...and may only fall short of it at saturation: a run that
            # dropped nothing and ended with negligible backlog must have
            # achieved what was offered.
            saturated = (
                row["dropped"] > 0
                or row["final_backlog_us"] > 0.1 * row["arrival_span_us"]
            )
            if not saturated:
                _require(
                    row["achieved_rps"] >= row["offered_rps"] * 0.9,
                    rpath,
                    f"unsaturated run achieved {row['achieved_rps']} rps "
                    f"of {row['offered_rps']} offered",
                )
            _require(
                len(row["tenants"]) == tenant_count,
                rpath,
                f"{len(row['tenants'])} tenant slices for {tenant_count} tenants",
            )
            sums = {"requests": 0, "dropped": 0}
            for k, tenant in enumerate(row["tenants"]):
                tpath = f"{rpath}.tenants[{k}]"
                _check_fields(tenant, _SERVING_TENANT_FIELDS, tpath)
                _check_quantile_order(tenant, tpath)
                _require(
                    0.0 <= tenant["gc_time_share"] <= 1.0,
                    tpath,
                    f"gc_time_share {tenant['gc_time_share']} outside [0, 1]",
                )
                sums["requests"] += tenant["requests"]
                sums["dropped"] += tenant["dropped"]
            # Per-tenant accounting is exact, not sampled: the lane sums
            # must reproduce the global counts.
            _require(
                sums["requests"] == row["served"],
                rpath,
                f"tenant requests sum {sums['requests']} != served {row['served']}",
            )
            _require(
                sums["dropped"] == row["dropped"],
                rpath,
                f"tenant dropped sum {sums['dropped']} != dropped {row['dropped']}",
            )
    _require(
        "diurnal_3tenant" in scenario_names and "burst" in scenario_names,
        path,
        f"missing required scenarios (got {sorted(scenario_names)})",
    )
    _require(max_tenants >= 3, path, "no scenario exercises >= 3 tenants")
    _require(
        any_drops,
        path,
        "no run dropped anything — the burst scenario is not saturating",
    )


def _check_trace_parse(doc, path):
    _require(isinstance(doc.get("results"), list) and doc["results"], path, "empty 'results'")
    for i, row in enumerate(doc["results"]):
        _check_fields(
            row,
            {"name": _STR, "lines": _INT, "seconds": _NUM, "lines_per_sec": _NUM},
            f"{path}.results[{i}]",
        )


_VALIDATORS = {
    "tpftl.bench_cache.v1": _check_cache,
    "tpftl.bench_e2e.v1": _check_e2e,
    "tpftl.bench_e2e.v2": _check_e2e_v2,
    "tpftl.bench_latency.v1": _check_latency,
    "tpftl.bench_recovery.v1": _check_recovery,
    "tpftl.bench_recovery.v2": _check_recovery_v2,
    "tpftl.bench_endurance.v1": _check_endurance,
    "tpftl.bench_serving.v1": _check_serving,
    "tpftl.bench_trace_parse.v1": _check_trace_parse,
}


def validate(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    _require(isinstance(doc, dict), path, "top level must be an object")
    schema = doc.get("schema")
    _require(
        schema in _VALIDATORS,
        path,
        f"unknown schema {schema!r} (known: {sorted(_VALIDATORS)})",
    )
    _VALIDATORS[schema](doc, path)
    return schema


def main(argv):
    if len(argv) >= 2 and argv[0] == "--glob":
        files = sorted(glob.glob(os.path.join(argv[1], "BENCH_*.json")))
        if not files:
            print(f"error: no BENCH_*.json under {argv[1]}", file=sys.stderr)
            return 1
    elif argv:
        files = argv
    else:
        print(__doc__, file=sys.stderr)
        return 1

    failed = False
    for path in files:
        try:
            schema = validate(path)
            print(f"ok: {path} ({schema})")
        except (OSError, ValueError, json.JSONDecodeError) as err:
            print(f"FAIL: {path}: {err}", file=sys.stderr)
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
